//! A dense row-major f32 matrix with the operations the model stack needs:
//! blocked matmul (plain and transposed variants), broadcasting adds,
//! row-wise softmax, and elementwise maps.

use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector (length must equal `rows*cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Build elementwise from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — (m×k)·(k×n) → m×n.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        // ikj loop order: streams through `other` rows, vectorizes well.
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` — (k×m)ᵀ·(k×n) → m×n, without materializing the
    /// transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn outer dims");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        for p in 0..k {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate().take(m) {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` — (m×k)·(n×k)ᵀ → m×n.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dims");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            for j in 0..n {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// Add `bias` (length `cols`) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Multiply all elements by `s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise product into a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect(),
        }
    }

    /// Numerically-stable softmax applied to each row in place.
    pub fn softmax_rows(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
    }

    /// Index of the max element in each row. NaN entries compare as
    /// negative infinity; ties keep the lowest index, so an all-NaN row
    /// yields index 0 rather than panicking.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (i, &v) in self.row(r).iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Extract a contiguous block of rows as a new matrix.
    pub fn rows_slice(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.rows);
        Matrix {
            rows: count,
            cols: self.cols,
            data: self.data[start * self.cols..(start + count) * self.cols].to_vec(),
        }
    }

    /// Stack matrices with equal column counts vertically.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }
}

/// Cosine similarity between two equal-length vectors (0 when degenerate).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_values() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &[1., 0., 2., 1., 0., 1., 1., 2., 3., 1., 0., 1.]);
        let tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(tn.data(), explicit.data());

        let c = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let d = m(4, 3, &[1., 0., 2., 1., 0., 1., 1., 2., 3., 0., 1., 1.]);
        let nt = c.matmul_nt(&d);
        let explicit = c.matmul(&d.transpose());
        assert_eq!(nt.data(), explicit.data());
    }

    #[test]
    fn softmax_rows_sane() {
        let mut x = m(2, 3, &[1., 2., 3., 1000., 1000., 1000.]);
        x.softmax_rows();
        for r in 0..2 {
            let s: f32 = x.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Large equal logits don't overflow (stability) and give uniform.
        assert!((x.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        assert!(x.get(0, 2) > x.get(0, 1));
    }

    #[test]
    fn broadcast_and_elementwise() {
        let mut x = Matrix::zeros(2, 3);
        x.add_row_broadcast(&[1., 2., 3.]);
        assert_eq!(x.row(1), &[1., 2., 3.]);
        let y = x.map(|v| v * 2.0);
        assert_eq!(y.row(0), &[2., 4., 6.]);
        let h = x.hadamard(&y);
        assert_eq!(h.row(0), &[2., 8., 18.]);
        let mut z = x.clone();
        z.sub_assign(&x);
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn argmax_and_stats() {
        let x = m(2, 3, &[0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(x.argmax_rows(), vec![1, 0]);
        assert!((x.mean() - (0.1 + 0.9 + 0.0 + 5.0 - 1.0 + 2.0) / 6.0).abs() < 1e-6);
        assert!(x.is_finite());
        let bad = m(1, 1, &[f32::NAN]);
        assert!(!bad.is_finite());
    }

    #[test]
    fn argmax_treats_nan_as_negative_infinity() {
        // NaN entries lose to any finite value; an all-NaN row falls back
        // to index 0; ties keep the lowest index.
        let x = m(3, 3, &[f32::NAN, 2.0, 1.0, f32::NAN, f32::NAN, f32::NAN, 4.0, 4.0, 4.0]);
        assert_eq!(x.argmax_rows(), vec![1, 0, 0]);
        let neg = m(1, 2, &[f32::NEG_INFINITY, -1.0]);
        assert_eq!(neg.argmax_rows(), vec![1]);
    }

    #[test]
    fn rows_slice_and_vstack_inverse() {
        let x = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let top = x.rows_slice(0, 1);
        let rest = x.rows_slice(1, 2);
        let back = Matrix::vstack(&[&top, &rest]);
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn cosine_identities() {
        assert!((cosine(&[1., 0.], &[1., 0.]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1., 0.], &[0., 1.])).abs() < 1e-6);
        assert!((cosine(&[1., 1.], &[-1., -1.]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0., 0.], &[1., 1.]), 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
