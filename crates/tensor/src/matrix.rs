//! A dense row-major f32 matrix with the operations the model stack needs:
//! cache-blocked, row-parallel matmul (plain and transposed variants),
//! broadcasting adds, row-wise softmax, and elementwise maps.
//!
//! All kernels are deterministic at every thread count: output rows are
//! disjoint shards, and each output element's accumulation order is a pure
//! function of the shapes (tile loops keep the inner `p` index globally
//! ascending), so the tiled parallel kernels produce bitwise-identical
//! results to their sequential forms.

use std::fmt;

use crate::pool;

/// Tile width along the shared (`k`) dimension of matmuls.
const TILE_K: usize = 64;
/// Tile width along the output-column (`n`) dimension of matmuls.
const TILE_N: usize = 256;
/// Minimum multiply-add count before a matmul fans out across threads.
/// Workers are scoped OS threads, so the spawn cost (~tens of µs) must be
/// amortised by several milliseconds of kernel time before fanning out
/// wins. Bench data showed the previous 2^20 gate admitting sub-millisecond
/// calls (96×256·256×256 ≈ 6M MACs ≈ 0.8 ms) where the spawn overhead ate
/// the entire speedup; at 2^25 MACs (~4 ms single-threaded) the overhead is
/// a few percent and parallel dispatch wins outright on every shape that
/// clears the gate.
const PAR_FLOPS_MIN: usize = 1 << 25;

/// Rows per parallel chunk for an op of `work` total scalar operations over
/// `rows` independent rows; `rows` (one chunk → sequential) when threading
/// isn't worthwhile.
fn row_chunk(rows: usize, work: usize) -> usize {
    let threads = pool::effective_threads();
    if threads <= 1 || work < PAR_FLOPS_MIN || rows == 0 {
        rows.max(1)
    } else {
        rows.div_ceil(threads)
    }
}

/// `out[r][j] += sum_p a[row0+r][p] * b[p][j]` for the chunk's rows, tiled
/// over `(p, j)`. The `p` index ascends globally per output element, so the
/// result is bitwise identical to the untiled `ikj` loop.
///
/// The hot path is a 4×8 register tile: four output rows by eight columns
/// of accumulators live in vector registers across the whole `p` loop, so
/// each streamed `b` row feeds 32 multiply-adds and `out` is touched once
/// per tile instead of once per `p`. Tiling only regroups *which elements*
/// share a pass — each element still starts from its current value and
/// accumulates over `p` ascending — so the output is bitwise identical to
/// the scalar form at any row count, shape, or chunk boundary.
fn matmul_rows(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for jb in (0..n).step_by(TILE_N) {
        let jw = TILE_N.min(n - jb);
        for pb in (0..k).step_by(TILE_K) {
            let pw = TILE_K.min(k - pb);
            let mut r = 0;
            while r + 4 <= rows {
                let a0 = &a[(row0 + r) * k..][..k];
                let a1 = &a[(row0 + r + 1) * k..][..k];
                let a2 = &a[(row0 + r + 2) * k..][..k];
                let a3 = &a[(row0 + r + 3) * k..][..k];
                let mut j = 0;
                while j + 8 <= jw {
                    let col = jb + j;
                    let mut acc0 = [0.0f32; 8];
                    let mut acc1 = [0.0f32; 8];
                    let mut acc2 = [0.0f32; 8];
                    let mut acc3 = [0.0f32; 8];
                    acc0.copy_from_slice(&out[r * n + col..][..8]);
                    acc1.copy_from_slice(&out[(r + 1) * n + col..][..8]);
                    acc2.copy_from_slice(&out[(r + 2) * n + col..][..8]);
                    acc3.copy_from_slice(&out[(r + 3) * n + col..][..8]);
                    for p in pb..pb + pw {
                        let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
                        let b8 = &b[p * n + col..][..8];
                        for l in 0..8 {
                            acc0[l] += v0 * b8[l];
                            acc1[l] += v1 * b8[l];
                            acc2[l] += v2 * b8[l];
                            acc3[l] += v3 * b8[l];
                        }
                    }
                    out[r * n + col..][..8].copy_from_slice(&acc0);
                    out[(r + 1) * n + col..][..8].copy_from_slice(&acc1);
                    out[(r + 2) * n + col..][..8].copy_from_slice(&acc2);
                    out[(r + 3) * n + col..][..8].copy_from_slice(&acc3);
                    j += 8;
                }
                if j < jw {
                    // Column remainder (< 8 wide): plain per-p accumulation.
                    for p in pb..pb + pw {
                        let (v0, v1, v2, v3) = (a0[p], a1[p], a2[p], a3[p]);
                        let b_row = &b[p * n + jb + j..][..jw - j];
                        for (l, &bv) in b_row.iter().enumerate() {
                            out[r * n + jb + j + l] += v0 * bv;
                            out[(r + 1) * n + jb + j + l] += v1 * bv;
                            out[(r + 2) * n + jb + j + l] += v2 * bv;
                            out[(r + 3) * n + jb + j + l] += v3 * bv;
                        }
                    }
                }
                r += 4;
            }
            for r in r..rows {
                let a_row = &a[(row0 + r) * k..][..k];
                let o_row = &mut out[r * n + jb..][..jw];
                for p in pb..pb + pw {
                    let av = a_row[p];
                    let b_row = &b[p * n + jb..][..jw];
                    for (o, &bv) in o_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

/// `out[row0+r][j] += sum_p a[p][row0+r] * b[p][j]` (aᵀ·b) for the chunk's
/// rows; `a` is `k × m` and read down columns, `b` streams row-wise. Rows
/// are register-blocked four at a time exactly like [`matmul_rows`] — same
/// per-element accumulation order, same bitwise guarantee.
fn matmul_tn_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for jb in (0..n).step_by(TILE_N) {
        let jw = TILE_N.min(n - jb);
        for pb in (0..k).step_by(TILE_K) {
            let pw = TILE_K.min(k - pb);
            let mut r = 0;
            while r + 4 <= rows {
                let i = row0 + r;
                let (o0, rest) = out[r * n..(r + 4) * n].split_at_mut(n);
                let (o1, rest) = rest.split_at_mut(n);
                let (o2, o3) = rest.split_at_mut(n);
                let o0 = &mut o0[jb..jb + jw];
                let o1 = &mut o1[jb..jb + jw];
                let o2 = &mut o2[jb..jb + jw];
                let o3 = &mut o3[jb..jb + jw];
                for p in pb..pb + pw {
                    let a_col = &a[p * m + i..][..4];
                    let (v0, v1, v2, v3) = (a_col[0], a_col[1], a_col[2], a_col[3]);
                    let b_row = &b[p * n + jb..][..jw];
                    for (j, &bv) in b_row.iter().enumerate() {
                        o0[j] += v0 * bv;
                        o1[j] += v1 * bv;
                        o2[j] += v2 * bv;
                        o3[j] += v3 * bv;
                    }
                }
                r += 4;
            }
            for r in r..rows {
                let i = row0 + r;
                let o_row = &mut out[r * n + jb..][..jw];
                for p in pb..pb + pw {
                    let av = a[p * m + i];
                    let b_row = &b[p * n + jb..][..jw];
                    for (o, &bv) in o_row.iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
}

/// Eight-lane dot product with a fixed reduction tree; deterministic and
/// autovectorizable (the lanes remove the serial dependence that blocks
/// LLVM from vectorizing a plain f32 accumulator). Public so callers that
/// work on strided views (e.g. per-head attention over packed Q/K slices)
/// can reproduce [`Matrix::matmul_nt`]'s exact bits without materialising
/// the slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for (lane, (&x, &y)) in lanes.iter_mut().zip(xa.iter().zip(xb)) {
            *lane += x * y;
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    let s04_15 = (lanes[0] + lanes[4]) + (lanes[1] + lanes[5]);
    let s26_37 = (lanes[2] + lanes[6]) + (lanes[3] + lanes[7]);
    (s04_15 + s26_37) + tail
}

/// [`dot`] specialised to exactly 8 elements — the attention head width in
/// every bench config. The op sequence is identical (each lane starts from
/// the accumulator's `+0.0`, same reduction tree, same trailing `+ 0.0` for
/// the empty tail, none of which are FP identities for signed zeros), so the
/// result is bit-for-bit the same as `dot(a, b)` with `a.len() == 8`; only
/// the chunk/tail loop machinery is gone, which lets LLVM keep the whole dot
/// in two SIMD lanes.
///
/// # Panics
/// Panics if either slice is shorter than 8.
#[inline(always)]
pub fn dot8(a: &[f32], b: &[f32]) -> f32 {
    let (a, b) = (&a[..8], &b[..8]);
    let l0 = 0.0f32 + a[0] * b[0];
    let l1 = 0.0f32 + a[1] * b[1];
    let l2 = 0.0f32 + a[2] * b[2];
    let l3 = 0.0f32 + a[3] * b[3];
    let l4 = 0.0f32 + a[4] * b[4];
    let l5 = 0.0f32 + a[5] * b[5];
    let l6 = 0.0f32 + a[6] * b[6];
    let l7 = 0.0f32 + a[7] * b[7];
    let s04_15 = (l0 + l4) + (l1 + l5);
    let s26_37 = (l2 + l6) + (l3 + l7);
    (s04_15 + s26_37) + 0.0f32
}

/// `out[r][j] = dot(a[row0+r], b[j])` for the chunk's rows (a·bᵀ).
fn matmul_nt_rows(a: &[f32], b: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = out.len() / n;
    for r in 0..rows {
        let a_row = &a[(row0 + r) * k..][..k];
        let o_row = &mut out[r * n..][..n];
        for (j, o) in o_row.iter_mut().enumerate() {
            *o = dot(a_row, &b[j * k..][..k]);
        }
    }
}

/// Dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a flat row-major vector (length must equal `rows*cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// All-zeros `rows×cols` matrix reusing `backing`'s allocation: the
    /// vector is cleared and zero-resized in place, so no heap allocation
    /// happens when its capacity already fits. The workhorse of
    /// [`crate::scratch::ScratchArena`].
    pub fn zeros_in(rows: usize, cols: usize, mut backing: Vec<f32>) -> Matrix {
        backing.clear();
        backing.resize(rows * cols, 0.0);
        Matrix { rows, cols, data: backing }
    }

    /// Consume the matrix, yielding its flat row-major backing vector (so
    /// the allocation can be recycled through [`Matrix::zeros_in`]).
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Build elementwise from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — (m×k)·(k×n) → m×n.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_fill(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] written into a caller-provided `m×n` output,
    /// overwriting its contents without allocating. Same kernels, same
    /// shard boundaries, same accumulation order — the result is bitwise
    /// identical to the allocating form.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul_into output shape {}x{} for {}x{} @ {}x{}",
            out.rows,
            out.cols,
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        out.data.fill(0.0);
        self.matmul_fill(other, out);
    }

    /// Shared matmul dispatch; `out` must be `m×n` and all zeros (the
    /// kernels accumulate into it).
    fn matmul_fill(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        nfm_obs::counter!("tensor.matmul.calls").inc();
        nfm_obs::counter!("tensor.matmul.macs", nfm_obs::Unit::Macs).add((m * k * n) as u64);
        let (a, b) = (&self.data, &other.data);
        let chunk_rows = row_chunk(m, m * k * n);
        pool::par_chunks_mut(&mut out.data, chunk_rows * n, |offset, chunk| {
            matmul_rows(a, b, chunk, offset / n.max(1), k, n);
        });
    }

    /// `selfᵀ @ other` — (k×m)ᵀ·(k×n) → m×n, without materializing the
    /// transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn outer dims");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        nfm_obs::counter!("tensor.matmul_tn.calls").inc();
        nfm_obs::counter!("tensor.matmul.macs", nfm_obs::Unit::Macs).add((m * k * n) as u64);
        let mut out = Matrix::zeros(m, n);
        let (a, b) = (&self.data, &other.data);
        let chunk_rows = row_chunk(m, m * k * n);
        pool::par_chunks_mut(&mut out.data, chunk_rows * n, |offset, chunk| {
            matmul_tn_rows(a, b, chunk, offset / n.max(1), k, m, n);
        });
        out
    }

    /// `self @ otherᵀ` — (m×k)·(n×k)ᵀ → m×n.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt inner dims");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        nfm_obs::counter!("tensor.matmul_nt.calls").inc();
        nfm_obs::counter!("tensor.matmul.macs", nfm_obs::Unit::Macs).add((m * k * n) as u64);
        let mut out = Matrix::zeros(m, n);
        let (a, b) = (&self.data, &other.data);
        let chunk_rows = row_chunk(m, m * k * n);
        pool::par_chunks_mut(&mut out.data, chunk_rows * n, |offset, chunk| {
            matmul_nt_rows(a, b, chunk, offset / n.max(1), k, n);
        });
        out
    }

    /// Transposed copy (tiled over the source rows, parallel over output
    /// rows).
    pub fn transpose(&self) -> Matrix {
        let (r, c) = (self.rows, self.cols);
        let mut out = Matrix::zeros(c, r);
        if r == 0 || c == 0 {
            return out;
        }
        let src = &self.data;
        let chunk_rows = row_chunk(c, r * c);
        pool::par_chunks_mut(&mut out.data, chunk_rows * r, |offset, chunk| {
            let col0 = offset / r;
            let rows = chunk.len() / r;
            const TILE_ROWS: usize = 64;
            for rb in (0..r).step_by(TILE_ROWS) {
                let rw = TILE_ROWS.min(r - rb);
                for (i, o_row) in chunk.chunks_mut(r).enumerate().take(rows) {
                    let col = col0 + i;
                    for rr in rb..rb + rw {
                        o_row[rr] = src[rr * c + col];
                    }
                }
            }
        });
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let src = &other.data;
        pool::par_chunks_mut(&mut self.data, pool::elem_chunk(src.len()), |offset, chunk| {
            let n = chunk.len();
            for (a, &b) in chunk.iter_mut().zip(&src[offset..offset + n]) {
                *a += b;
            }
        });
    }

    /// Elementwise `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let src = &other.data;
        pool::par_chunks_mut(&mut self.data, pool::elem_chunk(src.len()), |offset, chunk| {
            let n = chunk.len();
            for (a, &b) in chunk.iter_mut().zip(&src[offset..offset + n]) {
                *a -= b;
            }
        });
    }

    /// Add `bias` (length `cols`) to every row.
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        let cols = self.cols;
        if cols == 0 {
            return;
        }
        let chunk_rows = row_chunk(self.rows, self.rows * cols);
        pool::par_chunks_mut(&mut self.data, chunk_rows * cols, |_, chunk| {
            for row in chunk.chunks_mut(cols) {
                for (a, &b) in row.iter_mut().zip(bias) {
                    *a += b;
                }
            }
        });
    }

    /// Multiply all elements by `s`.
    pub fn scale(&mut self, s: f32) {
        pool::par_chunks_mut(
            &mut self.data,
            pool::elem_chunk(self.rows * self.cols),
            |_, chunk| {
                for a in chunk {
                    *a *= s;
                }
            },
        );
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut data = vec![0.0f32; self.data.len()];
        let src = &self.data;
        pool::par_chunks_mut(&mut data, pool::elem_chunk(src.len()), |offset, chunk| {
            let n = chunk.len();
            for (o, &x) in chunk.iter_mut().zip(&src[offset..offset + n]) {
                *o = f(x);
            }
        });
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// [`Matrix::map`] written into a caller-provided same-shape output,
    /// overwriting its contents without allocating; bitwise identical to
    /// the allocating form.
    pub fn map_into(&self, f: impl Fn(f32) -> f32 + Sync, out: &mut Matrix) {
        assert_eq!((self.rows, self.cols), (out.rows, out.cols), "map_into shape");
        let src = &self.data;
        pool::par_chunks_mut(&mut out.data, pool::elem_chunk(src.len()), |offset, chunk| {
            let n = chunk.len();
            for (o, &x) in chunk.iter_mut().zip(&src[offset..offset + n]) {
                *o = f(x);
            }
        });
    }

    /// Elementwise product into a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut data = vec![0.0f32; self.data.len()];
        let (a, b) = (&self.data, &other.data);
        pool::par_chunks_mut(&mut data, pool::elem_chunk(a.len()), |offset, chunk| {
            for (i, o) in chunk.iter_mut().enumerate() {
                *o = a[offset + i] * b[offset + i];
            }
        });
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Numerically-stable softmax applied to each row in place (rows are
    /// independent, so row shards parallelize without changing any bits).
    pub fn softmax_rows(&mut self) {
        let cols = self.cols;
        if cols == 0 {
            return;
        }
        let chunk_rows = row_chunk(self.rows, self.rows * cols * 4);
        pool::par_chunks_mut(&mut self.data, chunk_rows * cols, |_, chunk| {
            for row in chunk.chunks_mut(cols) {
                let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0;
                for v in row.iter_mut() {
                    *v = (*v - max).exp();
                    sum += *v;
                }
                if sum > 0.0 {
                    for v in row.iter_mut() {
                        *v /= sum;
                    }
                }
            }
        });
    }

    /// Index of the max element in each row. NaN entries compare as
    /// negative infinity; ties keep the lowest index, so an all-NaN row
    /// yields index 0 rather than panicking.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let mut best = 0usize;
                let mut best_v = f32::NEG_INFINITY;
                for (i, &v) in self.row(r).iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Frobenius norm (fixed-shard reduction: the value is identical at
    /// every thread count).
    pub fn norm(&self) -> f32 {
        pool::sum_sq(&self.data).sqrt()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Extract a contiguous block of rows as a new matrix.
    pub fn rows_slice(&self, start: usize, count: usize) -> Matrix {
        assert!(start + count <= self.rows);
        Matrix {
            rows: count,
            cols: self.cols,
            data: self.data[start * self.cols..(start + count) * self.cols].to_vec(),
        }
    }

    /// Stack matrices with equal column counts vertically.
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty());
        let cols = parts[0].cols;
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }
}

/// Cosine similarity between two equal-length vectors (0 when degenerate).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn dot8_matches_dot_bitwise() {
        // LCG-driven values spanning magnitudes and signs, plus signed-zero
        // products, where `+0.0` non-identities would show up first.
        let mut state = 0x1234_5678_u32;
        let mut next = || {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            ((state >> 8) as f32 / 8_388_608.0 - 1.0) * 3.0
        };
        for _ in 0..1000 {
            let a: Vec<f32> = (0..8).map(|_| next()).collect();
            let b: Vec<f32> = (0..8).map(|_| next()).collect();
            assert_eq!(dot(&a, &b).to_bits(), dot8(&a, &b).to_bits());
        }
        let z = [-0.0f32; 8];
        let p = [1.0f32; 8];
        assert_eq!(dot(&z, &p).to_bits(), dot8(&z, &p).to_bits());
        assert_eq!(dot(&z, &z).to_bits(), dot8(&z, &z).to_bits());
        assert_eq!(dot(&p, &z).to_bits(), dot8(&p, &z).to_bits());
    }

    #[test]
    fn matmul_known_values() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &[1., 0., 2., 1., 0., 1., 1., 2., 3., 1., 0., 1.]);
        let tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(tn.data(), explicit.data());

        let c = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let d = m(4, 3, &[1., 0., 2., 1., 0., 1., 1., 2., 3., 0., 1., 1.]);
        let nt = c.matmul_nt(&d);
        let explicit = c.matmul(&d.transpose());
        assert_eq!(nt.data(), explicit.data());
    }

    #[test]
    fn softmax_rows_sane() {
        let mut x = m(2, 3, &[1., 2., 3., 1000., 1000., 1000.]);
        x.softmax_rows();
        for r in 0..2 {
            let s: f32 = x.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Large equal logits don't overflow (stability) and give uniform.
        assert!((x.get(1, 0) - 1.0 / 3.0).abs() < 1e-5);
        assert!(x.get(0, 2) > x.get(0, 1));
    }

    #[test]
    fn broadcast_and_elementwise() {
        let mut x = Matrix::zeros(2, 3);
        x.add_row_broadcast(&[1., 2., 3.]);
        assert_eq!(x.row(1), &[1., 2., 3.]);
        let y = x.map(|v| v * 2.0);
        assert_eq!(y.row(0), &[2., 4., 6.]);
        let h = x.hadamard(&y);
        assert_eq!(h.row(0), &[2., 8., 18.]);
        let mut z = x.clone();
        z.sub_assign(&x);
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn argmax_and_stats() {
        let x = m(2, 3, &[0.1, 0.9, 0.0, 5.0, -1.0, 2.0]);
        assert_eq!(x.argmax_rows(), vec![1, 0]);
        assert!((x.mean() - (0.1 + 0.9 + 0.0 + 5.0 - 1.0 + 2.0) / 6.0).abs() < 1e-6);
        assert!(x.is_finite());
        let bad = m(1, 1, &[f32::NAN]);
        assert!(!bad.is_finite());
    }

    #[test]
    fn argmax_treats_nan_as_negative_infinity() {
        // NaN entries lose to any finite value; an all-NaN row falls back
        // to index 0; ties keep the lowest index.
        let x = m(3, 3, &[f32::NAN, 2.0, 1.0, f32::NAN, f32::NAN, f32::NAN, 4.0, 4.0, 4.0]);
        assert_eq!(x.argmax_rows(), vec![1, 0, 0]);
        let neg = m(1, 2, &[f32::NEG_INFINITY, -1.0]);
        assert_eq!(neg.argmax_rows(), vec![1]);
    }

    #[test]
    fn rows_slice_and_vstack_inverse() {
        let x = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let top = x.rows_slice(0, 1);
        let rest = x.rows_slice(1, 2);
        let back = Matrix::vstack(&[&top, &rest]);
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn cosine_identities() {
        assert!((cosine(&[1., 0.], &[1., 0.]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1., 0.], &[0., 1.])).abs() < 1e-6);
        assert!((cosine(&[1., 1.], &[-1., -1.]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0., 0.], &[1., 1.]), 0.0);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    /// Naive triple-loop reference. Test data is small-integer valued, so
    /// every partial sum is exactly representable in f32 and the reference
    /// must match the tiled kernels bit for bit.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f32;
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    fn int_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| ((r * 31 + c * 7 + salt) % 13) as f32 - 6.0)
    }

    #[test]
    fn tiled_kernels_match_naive_reference_exactly() {
        // Shapes chosen to straddle tile boundaries: 1×1 (degenerate),
        // 17×33·33×65 (non-square, nothing divides the tiles), 3×70·70×5
        // (rows < tile, k crosses TILE_K=64), 5×70·70×300 (n crosses
        // TILE_N=256).
        for (m_, k_, n_) in [(1, 1, 1), (17, 33, 65), (3, 70, 5), (5, 70, 300)] {
            let a = int_matrix(m_, k_, 1);
            let b = int_matrix(k_, n_, 2);
            let want = naive_matmul(&a, &b);
            assert_eq!(a.matmul(&b).data(), want.data(), "matmul {m_}x{k_}·{k_}x{n_}");
            let at = a.transpose();
            assert_eq!(at.matmul_tn(&b).data(), want.data(), "matmul_tn {m_}x{k_}·{k_}x{n_}");
            let bt = b.transpose();
            assert_eq!(a.matmul_nt(&bt).data(), want.data(), "matmul_nt {m_}x{k_}·{k_}x{n_}");
        }
    }

    /// Emulate the parallel dispatch by running the row kernels over
    /// manually split output chunks and comparing against the one-chunk
    /// call. This covers the shard-boundary arithmetic directly, without
    /// depending on the host's core count or the `PAR_FLOPS_MIN` gate
    /// (which small test shapes no longer clear).
    #[test]
    fn row_kernels_are_chunk_boundary_invariant() {
        let (m_, k_, n_) = (13, 70, 37);
        let a = int_matrix(m_, k_, 5);
        let b = int_matrix(k_, n_, 6);
        let at = a.transpose();
        let bt = b.transpose();
        for split in [1usize, 2, 3, 5, 12] {
            let mut whole = vec![0.0f32; m_ * n_];
            let mut parts = vec![0.0f32; m_ * n_];
            matmul_rows(a.data(), b.data(), &mut whole, 0, k_, n_);
            for r in shard_test_ranges(m_, split) {
                matmul_rows(
                    a.data(),
                    b.data(),
                    &mut parts[r.start * n_..r.end * n_],
                    r.start,
                    k_,
                    n_,
                );
            }
            assert_eq!(whole, parts, "matmul_rows split {split}");

            let mut whole_tn = vec![0.0f32; m_ * n_];
            let mut parts_tn = vec![0.0f32; m_ * n_];
            matmul_tn_rows(at.data(), b.data(), &mut whole_tn, 0, k_, m_, n_);
            for r in shard_test_ranges(m_, split) {
                matmul_tn_rows(
                    at.data(),
                    b.data(),
                    &mut parts_tn[r.start * n_..r.end * n_],
                    r.start,
                    k_,
                    m_,
                    n_,
                );
            }
            assert_eq!(whole_tn, parts_tn, "matmul_tn_rows split {split}");

            let mut whole_nt = vec![0.0f32; m_ * n_];
            let mut parts_nt = vec![0.0f32; m_ * n_];
            matmul_nt_rows(a.data(), bt.data(), &mut whole_nt, 0, k_, n_);
            for r in shard_test_ranges(m_, split) {
                matmul_nt_rows(
                    a.data(),
                    bt.data(),
                    &mut parts_nt[r.start * n_..r.end * n_],
                    r.start,
                    k_,
                    n_,
                );
            }
            assert_eq!(whole_nt, parts_nt, "matmul_nt_rows split {split}");
        }
    }

    fn shard_test_ranges(rows: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
        let chunk = rows.div_ceil(parts);
        (0..rows).step_by(chunk.max(1)).map(|s| s..(s + chunk).min(rows)).collect()
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let a = int_matrix(9, 33, 7);
        let b = int_matrix(33, 21, 8);
        let want = a.matmul(&b);
        // Dirty, reused backing: matmul_into must fully overwrite it.
        let mut out = Matrix::zeros(9, 21);
        out.data_mut().fill(f32::NAN);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), want.data());

        let mapped = want.map(|v| v * 0.5 - 1.0);
        let mut mout = Matrix::zeros(9, 21);
        mout.data_mut().fill(f32::NAN);
        want.map_into(|v| v * 0.5 - 1.0, &mut mout);
        assert_eq!(mout.data(), mapped.data());
    }

    #[test]
    fn zeros_in_recycles_backing_without_reallocating() {
        let big = Matrix::zeros(8, 16);
        let backing = big.into_data();
        let ptr = backing.as_ptr();
        let m = Matrix::zeros_in(4, 5, backing);
        assert_eq!((m.rows(), m.cols()), (4, 5));
        assert!(m.data().iter().all(|&v| v == 0.0));
        assert_eq!(m.data().as_ptr(), ptr, "capacity was large enough: no realloc");
    }

    #[test]
    fn matmul_is_thread_count_invariant() {
        let a = int_matrix(64, 96, 3);
        let b = int_matrix(96, 80, 4);
        pool::set_threads(1);
        let c1 = a.matmul(&b);
        let tn1 = a.transpose().matmul_tn(&b);
        let nt1 = a.matmul_nt(&b.transpose());
        let mut s1 = c1.clone();
        s1.softmax_rows();
        let t1 = c1.transpose();
        pool::set_threads(4);
        let c4 = a.matmul(&b);
        let tn4 = a.transpose().matmul_tn(&b);
        let nt4 = a.matmul_nt(&b.transpose());
        let mut s4 = c4.clone();
        s4.softmax_rows();
        let t4 = c4.transpose();
        pool::set_threads(0);
        let bits = |m: &Matrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&c1), bits(&c4), "matmul");
        assert_eq!(bits(&tn1), bits(&tn4), "matmul_tn");
        assert_eq!(bits(&nt1), bits(&nt4), "matmul_nt");
        assert_eq!(bits(&s1), bits(&s4), "softmax_rows");
        assert_eq!(bits(&t1), bits(&t4), "transpose");
    }
}
