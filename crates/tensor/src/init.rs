//! Weight initialization helpers.

use rand::Rng;

use crate::matrix::Matrix;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-a..=a))
}

/// Small-scale normal init (Box–Muller), `N(0, std²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, std: f32) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (z as f32) * std
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(&mut rng, 64, 64);
        let a = (6.0f64 / 128.0).sqrt() as f32;
        assert!(m.data().iter().all(|&v| v.abs() <= a));
        // Not all identical.
        assert!(m.data().iter().any(|&v| v != m.data()[0]));
    }

    #[test]
    fn normal_statistics() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = normal(&mut rng, 100, 100, 0.5);
        let mean = m.mean();
        let var: f32 =
            m.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.data().len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }
}
