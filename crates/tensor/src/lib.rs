//! # nfm-tensor — minimal CPU deep-learning substrate
//!
//! Dense f32 matrices, layers with explicit forward/backward passes
//! (`Linear`, `Embedding`, `LayerNorm`, `Gelu`), fused softmax
//! cross-entropy, and optimizers (`Sgd`, `Adam`) with warmup/decay
//! schedules and global-norm gradient clipping.
//!
//! The design deliberately avoids a tape autograd: every layer's backward
//! pass is written and gradient-checked by hand, which keeps training loops
//! predictable and the whole stack dependency-free (per DESIGN.md §1, the
//! repro band notes ML crates for this are immature).
//!
//! ```
//! use nfm_tensor::layers::{Linear, Module};
//! use nfm_tensor::matrix::Matrix;
//! use nfm_tensor::optim::{Adam, Schedule};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut layer = Linear::new(&mut rng, 4, 2);
//! let mut opt = Adam::new(Schedule::Constant(1e-2));
//! let x = Matrix::from_fn(3, 4, |r, c| (r + c) as f32);
//! for _ in 0..10 {
//!     layer.zero_grad();
//!     let y = layer.forward(&x);
//!     layer.backward(&y); // dL/dy = y minimizes ||y||²/2
//!     opt.step(&mut layer);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod fastmath;
pub mod init;
pub mod layers;
pub mod loss;
pub mod matrix;
pub mod optim;
pub mod pool;
pub mod scratch;

pub use checkpoint::CheckpointError;
pub use layers::{Embedding, Gelu, LayerNorm, Linear, Module};
pub use loss::{mse, softmax_cross_entropy, IGNORE_INDEX};
pub use matrix::{cosine, Matrix};
pub use optim::{clip_global_norm, Adam, Schedule, Sgd};
pub use scratch::ScratchArena;
