//! Reusable scratch buffers for allocation-free inference hot paths.
//!
//! Single-request transformer inference at small model sizes is dominated
//! by per-call overhead, and a large slice of that overhead is heap churn:
//! every layer allocates (and immediately frees) its activation matrices.
//! [`ScratchArena`] is a deliberately simple free-list of retired `Vec<f32>`
//! backing buffers: the batched serving path takes zeroed matrices out,
//! puts them back when a stage retires them, and after the first batch the
//! whole forward pass runs against warm, already-sized allocations.
//!
//! The arena affects *where* bytes live, never *what* they are: matrices
//! handed out by [`ScratchArena::take`] are fully zeroed (exactly like
//! [`Matrix::zeros`]), so compute results are bitwise independent of reuse.

use crate::matrix::Matrix;

/// A free-list of retired matrix backing buffers.
///
/// Not thread-safe by design — each serving engine owns one arena and
/// threads it through its (main-thread) batched forward pass. Buffers
/// crossing into pool workers must be allocated normally instead.
#[derive(Debug, Default)]
pub struct ScratchArena {
    free: Vec<Vec<f32>>,
}

impl ScratchArena {
    /// Empty arena; buffers are acquired lazily on first use.
    pub fn new() -> ScratchArena {
        ScratchArena::default()
    }

    /// Hand out a zeroed `rows×cols` matrix, recycling the best-fitting
    /// retired buffer (smallest capacity that already holds `rows*cols`
    /// elements). Falls back to growing the largest retired buffer, or a
    /// fresh allocation when the arena is empty.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let need = rows * cols;
        if self.free.is_empty() {
            nfm_obs::counter!("tensor.arena.alloc").inc();
            return Matrix::zeros(rows, cols);
        }
        let mut pick = 0usize;
        let mut fits = false;
        for (i, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            let pick_cap = self.free[pick].capacity();
            if cap >= need {
                if !fits || cap < pick_cap {
                    pick = i;
                    fits = true;
                }
            } else if !fits && cap > pick_cap {
                pick = i;
            }
        }
        if fits {
            nfm_obs::counter!("tensor.arena.reuse").inc();
        } else {
            nfm_obs::counter!("tensor.arena.grow").inc();
        }
        let backing = self.free.swap_remove(pick);
        Matrix::zeros_in(rows, cols, backing)
    }

    /// Retire a matrix, returning its backing buffer to the free list for
    /// a later [`ScratchArena::take`].
    pub fn put(&mut self, m: Matrix) {
        self.free.push(m.into_data());
    }

    /// Hand out a matrix whose row `j` is an exact copy of `src`'s row
    /// `rows[j]` — the row-gather the multi-task fan-out path uses to
    /// slice one task's pending requests out of a shared pooled-embedding
    /// batch. Backed by the free list like [`ScratchArena::take`]; the
    /// copies are element-exact, so downstream compute is bitwise
    /// identical to running on the original rows.
    pub fn take_gather(&mut self, src: &Matrix, rows: &[usize]) -> Matrix {
        let mut out = self.take(rows.len(), src.cols());
        for (j, &r) in rows.iter().enumerate() {
            out.row_mut(j).copy_from_slice(src.row(r));
        }
        out
    }

    /// Number of retired buffers currently available for reuse.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_always_zeroed_even_after_dirty_put() {
        let mut arena = ScratchArena::new();
        let mut m = arena.take(3, 4);
        m.data_mut().fill(7.5);
        arena.put(m);
        let again = arena.take(3, 4);
        assert!(again.data().iter().all(|&v| v == 0.0));
        assert_eq!((again.rows(), again.cols()), (3, 4));
    }

    #[test]
    fn take_prefers_best_fitting_retired_buffer() {
        let mut arena = ScratchArena::new();
        let small = Matrix::zeros(2, 2);
        let mid = Matrix::zeros(4, 4);
        let big = Matrix::zeros(16, 16);
        let mid_ptr = mid.data().as_ptr();
        arena.put(small);
        arena.put(big);
        arena.put(mid);
        // 3x4 = 12 elements: mid (16) is the tightest fit, not big (256).
        let got = arena.take(3, 4);
        assert_eq!(got.data().as_ptr(), mid_ptr);
        assert_eq!(arena.available(), 2);
    }

    #[test]
    fn take_grows_largest_when_nothing_fits() {
        let mut arena = ScratchArena::new();
        arena.put(Matrix::zeros(1, 2));
        arena.put(Matrix::zeros(2, 3));
        let got = arena.take(8, 8);
        assert_eq!(got.data().len(), 64);
        assert!(got.data().iter().all(|&v| v == 0.0));
        // The larger of the two retired buffers was consumed.
        assert_eq!(arena.available(), 1);
        assert_eq!(arena.free[0].capacity(), 2);
    }

    #[test]
    fn take_gather_copies_rows_exactly_and_reuses_buffers() {
        let src = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32 * 0.5 - 2.0);
        let mut arena = ScratchArena::new();
        let got = arena.take_gather(&src, &[4, 0, 2]);
        assert_eq!((got.rows(), got.cols()), (3, 3));
        assert_eq!(got.row(0), src.row(4));
        assert_eq!(got.row(1), src.row(0));
        assert_eq!(got.row(2), src.row(2));
        arena.put(got);
        let again = arena.take_gather(&src, &[1]);
        assert_eq!(again.row(0), src.row(1));
        assert_eq!(arena.available(), 0, "the retired buffer was recycled");
    }

    #[test]
    fn shape_reuse_round_trip_keeps_results_identical() {
        let a = Matrix::from_fn(5, 6, |r, c| (r * 6 + c) as f32 * 0.25 - 3.0);
        let b = Matrix::from_fn(6, 7, |r, c| ((r * 7 + c) % 11) as f32 - 5.0);
        let want = a.matmul(&b);
        let mut arena = ScratchArena::new();
        for _ in 0..3 {
            let mut out = arena.take(5, 7);
            a.matmul_into(&b, &mut out);
            assert_eq!(out.data(), want.data());
            arena.put(out);
        }
        assert_eq!(arena.available(), 1, "one buffer cycles through");
    }
}
