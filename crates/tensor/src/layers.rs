//! Neural-network layers with explicit forward/backward passes.
//!
//! Each layer caches what its backward pass needs, accumulates parameter
//! gradients, and exposes its `(param, grad)` pairs through
//! [`Module::visit_params`] so optimizers can remain layer-agnostic.

use rand::Rng;

use crate::init;
use crate::matrix::Matrix;

/// Anything that owns trainable parameters.
pub trait Module {
    /// Call `f(param, grad)` for every parameter tensor, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Zero all gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.iter_mut().for_each(|v| *v = 0.0));
    }

    /// Total parameter count.
    fn n_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Snapshot every gradient slot, in visit order. Used by data-parallel
    /// training to ship a worker replica's gradients back for reduction.
    fn export_grads(&mut self) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        self.visit_params(&mut |_, g| out.push(g.to_vec()));
        out
    }

    /// Add a gradient snapshot (from [`Module::export_grads`] on a replica
    /// of this module) into this module's gradient slots. Slot order and
    /// shapes must match; data-parallel reducers call this once per shard,
    /// in fixed shard order, so the accumulated sum is deterministic.
    fn accumulate_grads(&mut self, grads: &[Vec<f32>]) {
        let mut slot = 0;
        self.visit_params(&mut |_, g| {
            let src = &grads[slot];
            assert_eq!(src.len(), g.len(), "gradient slot {slot} shape mismatch");
            for (gi, &si) in g.iter_mut().zip(src) {
                *gi += si;
            }
            slot += 1;
        });
        assert_eq!(slot, grads.len(), "gradient slot count mismatch");
    }
}

/// Fully-connected layer `y = x·W + b` (W is in×out).
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weights, `in × out`.
    pub w: Matrix,
    /// Bias, length `out`.
    pub b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
    cache_x: Option<Matrix>,
}

impl Linear {
    /// Create with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, n_in: usize, n_out: usize) -> Linear {
        Linear {
            w: init::xavier_uniform(rng, n_in, n_out),
            b: vec![0.0; n_out],
            gw: Matrix::zeros(n_in, n_out),
            gb: vec![0.0; n_out],
            cache_x: None,
        }
    }

    /// Forward pass, caching the input for backward.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        self.cache_x = Some(x.clone());
        y
    }

    /// Forward without caching (inference).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_broadcast(&self.b);
        y
    }

    /// [`Linear::forward_inference`] into a caller-provided output matrix
    /// (`x.rows × n_out`), overwriting its contents without allocating;
    /// bitwise identical to the allocating form.
    pub fn forward_inference_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.w, out);
        out.add_row_broadcast(&self.b);
    }

    /// Backward pass: accumulate gradients, return dL/dx.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        self.gw.add_assign(&x.matmul_tn(dy));
        for r in 0..dy.rows() {
            for (gb, d) in self.gb.iter_mut().zip(dy.row(r)) {
                *gb += d;
            }
        }
        dy.matmul_nt(&self.w)
    }
}

impl Module for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.w.data_mut(), self.gw.data_mut());
        f(&mut self.b, &mut self.gb);
    }
}

/// Token embedding table with scatter-add backward.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Table, `vocab × dim`.
    pub table: Matrix,
    grad: Matrix,
    cache_ids: Vec<usize>,
}

impl Embedding {
    /// Create with `N(0, 0.02)` entries (BERT-style).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, vocab: usize, dim: usize) -> Embedding {
        Embedding {
            table: init::normal(rng, vocab, dim, 0.02),
            grad: Matrix::zeros(vocab, dim),
            cache_ids: Vec::new(),
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Gather rows for `ids` (one output row per id).
    pub fn forward(&mut self, ids: &[usize]) -> Matrix {
        self.cache_ids = ids.to_vec();
        self.lookup(ids)
    }

    /// Gather without caching (inference).
    pub fn lookup(&self, ids: &[usize]) -> Matrix {
        let dim = self.dim();
        let mut out = Matrix::zeros(ids.len(), dim);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab(), "token id {id} out of range");
            out.row_mut(r).copy_from_slice(self.table.row(id));
        }
        out
    }

    /// Gather rows for `ids` into a span of `out` starting at row `row0`
    /// (used by the packed-batch forward to fill one sequence's slice of a
    /// concatenated activation matrix). Row contents are byte-for-byte the
    /// same copies [`Embedding::lookup`] performs.
    pub fn lookup_span(&self, ids: &[usize], out: &mut Matrix, row0: usize) {
        assert_eq!(out.cols(), self.dim(), "lookup_span dim");
        assert!(row0 + ids.len() <= out.rows(), "lookup_span rows");
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab(), "token id {id} out of range");
            out.row_mut(row0 + r).copy_from_slice(self.table.row(id));
        }
    }

    /// Scatter-add gradients for the cached ids.
    pub fn backward(&mut self, dy: &Matrix) {
        assert_eq!(dy.rows(), self.cache_ids.len());
        for (r, &id) in self.cache_ids.iter().enumerate() {
            for (g, d) in self.grad.row_mut(id).iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
    }
}

impl Module for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(self.table.data_mut(), self.grad.data_mut());
    }
}

/// Layer normalization over the last dimension with learned scale/shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale, length `dim`.
    pub gamma: Vec<f32>,
    /// Shift, length `dim`.
    pub beta: Vec<f32>,
    g_gamma: Vec<f32>,
    g_beta: Vec<f32>,
    eps: f32,
    cache: Option<(Matrix, Vec<f32>, Vec<f32>)>, // normalized x, mean, inv_std
}

impl LayerNorm {
    /// Create with unit scale and zero shift.
    pub fn new(dim: usize) -> LayerNorm {
        LayerNorm {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            g_gamma: vec![0.0; dim],
            g_beta: vec![0.0; dim],
            eps: 1e-5,
            cache: None,
        }
    }

    /// Forward pass, caching normalization statistics.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let (out, xhat, means, inv_stds) = self.compute(x);
        self.cache = Some((xhat, means, inv_stds));
        out
    }

    /// Forward without caching (inference).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        self.compute(x).0
    }

    /// [`LayerNorm::forward_inference`] into a caller-provided same-shape
    /// output, overwriting its contents without allocating. Runs the exact
    /// per-row statistics loop of `compute` (sans the backward caches), so
    /// the output is bitwise identical to the allocating form.
    pub fn forward_inference_into(&self, x: &Matrix, out: &mut Matrix) {
        let d = x.cols();
        assert_eq!(d, self.gamma.len());
        assert_eq!((out.rows(), out.cols()), (x.rows(), d), "layernorm out shape");
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for (c, &v) in row.iter().enumerate() {
                let h = (v - mean) * inv_std;
                out.set(r, c, h * self.gamma[c] + self.beta[c]);
            }
        }
    }

    fn compute(&self, x: &Matrix) -> (Matrix, Matrix, Vec<f32>, Vec<f32>) {
        let d = x.cols();
        assert_eq!(d, self.gamma.len());
        let mut out = Matrix::zeros(x.rows(), d);
        let mut xhat = Matrix::zeros(x.rows(), d);
        let mut means = Vec::with_capacity(x.rows());
        let mut inv_stds = Vec::with_capacity(x.rows());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for (c, &v) in row.iter().enumerate() {
                let h = (v - mean) * inv_std;
                xhat.set(r, c, h);
                out.set(r, c, h * self.gamma[c] + self.beta[c]);
            }
            means.push(mean);
            inv_stds.push(inv_std);
        }
        (out, xhat, means, inv_stds)
    }

    /// Backward pass: accumulate gamma/beta gradients, return dL/dx.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (xhat, _means, inv_stds) = self.cache.as_ref().expect("forward before backward");
        let d = dy.cols();
        let mut dx = Matrix::zeros(dy.rows(), d);
        for (r, &inv_std) in inv_stds.iter().enumerate() {
            let dyr = dy.row(r);
            let xh = xhat.row(r);
            // Accumulate parameter grads.
            for c in 0..d {
                self.g_gamma[c] += dyr[c] * xh[c];
                self.g_beta[c] += dyr[c];
            }
            // dxhat = dy * gamma
            let dxhat: Vec<f32> = (0..d).map(|c| dyr[c] * self.gamma[c]).collect();
            let sum_dxhat: f32 = dxhat.iter().sum();
            let sum_dxhat_xhat: f32 = dxhat.iter().zip(xh).map(|(a, b)| a * b).sum();
            for c in 0..d {
                let v =
                    (d as f32 * dxhat[c] - sum_dxhat - xh[c] * sum_dxhat_xhat) * inv_std / d as f32;
                dx.set(r, c, v);
            }
        }
        dx
    }
}

impl Module for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.gamma, &mut self.g_gamma);
        f(&mut self.beta, &mut self.g_beta);
    }
}

/// GELU activation (tanh approximation) with cached backward.
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cache_x: Option<Matrix>,
}

#[inline(always)]
fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + crate::fastmath::tanhf(C * (x + 0.044715 * x * x * x)))
}

fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let t = crate::fastmath::tanhf(C * (x + 0.044715 * x3));
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

impl Gelu {
    /// Create.
    pub fn new() -> Gelu {
        Gelu::default()
    }

    /// Forward pass with caching.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.cache_x = Some(x.clone());
        x.map(gelu_scalar)
    }

    /// Forward without caching.
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        x.map(gelu_scalar)
    }

    /// [`Gelu::forward_inference`] into a caller-provided same-shape
    /// output, overwriting its contents without allocating; bitwise
    /// identical to the allocating form.
    pub fn forward_inference_into(&self, x: &Matrix, out: &mut Matrix) {
        x.map_into(gelu_scalar, out);
    }

    /// Backward pass.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("forward before backward");
        x.map(gelu_grad_scalar).hadamard(dy)
    }
}

/// Sigmoid applied elementwise (used by the GRU).
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check for a scalar loss L = sum(layer(x)).
    fn grad_check_linear() -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(&mut rng, 4, 3);
        let x = init::normal(&mut rng, 2, 4, 1.0);
        let y = layer.forward(&x);
        let dy = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let dx = layer.backward(&dy);

        // Numeric dL/dx[0,0].
        let eps = 1e-3;
        let mut xp = x.clone();
        xp.set(0, 0, x.get(0, 0) + eps);
        let mut xm = x.clone();
        xm.set(0, 0, x.get(0, 0) - eps);
        let lp: f32 = layer.forward_inference(&xp).data().iter().sum();
        let lm: f32 = layer.forward_inference(&xm).data().iter().sum();
        ((lp - lm) / (2.0 * eps), dx.get(0, 0))
    }

    #[test]
    fn linear_gradient_matches_finite_difference() {
        let (numeric, analytic) = grad_check_linear();
        assert!((numeric - analytic).abs() < 1e-2, "numeric {numeric} analytic {analytic}");
    }

    #[test]
    fn linear_weight_gradient_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Linear::new(&mut rng, 3, 2);
        let x = init::normal(&mut rng, 2, 3, 1.0);
        layer.zero_grad();
        let y = layer.forward(&x);
        let dy = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        layer.backward(&dy);
        // Numeric dL/dW[0,0].
        let eps = 1e-3;
        let orig = layer.w.get(0, 0);
        layer.w.set(0, 0, orig + eps);
        let lp: f32 = layer.forward_inference(&x).data().iter().sum();
        layer.w.set(0, 0, orig - eps);
        let lm: f32 = layer.forward_inference(&x).data().iter().sum();
        layer.w.set(0, 0, orig);
        let numeric = (lp - lm) / (2.0 * eps);
        let mut analytic = None;
        let mut first = true;
        layer.visit_params(&mut |_, g| {
            if first {
                analytic = Some(g[0]);
                first = false;
            }
        });
        let analytic = analytic.unwrap();
        assert!((numeric - analytic).abs() < 1e-2, "numeric {numeric} analytic {analytic}");
    }

    #[test]
    fn embedding_scatter_add() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut emb = Embedding::new(&mut rng, 10, 4);
        let out = emb.forward(&[3, 3, 7]);
        assert_eq!(out.rows(), 3);
        assert_eq!(out.row(0), out.row(1));
        let dy = Matrix::from_fn(3, 4, |_, _| 1.0);
        emb.backward(&dy);
        let mut grads = Vec::new();
        emb.visit_params(&mut |_, g| grads = g.to_vec());
        // Token 3 was used twice → its grad row is 2.0 everywhere.
        assert_eq!(&grads[3 * 4..4 * 4], &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(&grads[7 * 4..8 * 4], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(&grads[0..4], &[0.0; 4]);
    }

    #[test]
    fn layernorm_output_is_normalized() {
        let mut ln = LayerNorm::new(8);
        let x = Matrix::from_fn(4, 8, |r, c| (r * 8 + c) as f32);
        let y = ln.forward(&x);
        for r in 0..4 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ln = LayerNorm::new(5);
        // Non-trivial gamma.
        for (i, g) in ln.gamma.iter_mut().enumerate() {
            *g = 1.0 + 0.1 * i as f32;
        }
        let x = init::normal(&mut rng, 3, 5, 1.0);
        // L = sum of elementwise square of output (non-linear in output so
        // the check exercises dy ≠ const).
        let y = ln.forward(&x);
        let dy = y.map(|v| 2.0 * v);
        let dx = ln.backward(&dy);

        let eps = 1e-2;
        let mut max_err = 0.0f32;
        for (r, c) in [(0, 0), (1, 3), (2, 4)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let lp: f32 = ln.forward_inference(&xp).data().iter().map(|v| v * v).sum();
            let lm: f32 = ln.forward_inference(&xm).data().iter().map(|v| v * v).sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let err = (numeric - dx.get(r, c)).abs() / numeric.abs().max(1.0);
            max_err = max_err.max(err);
        }
        assert!(max_err < 0.05, "max relative error {max_err}");
    }

    #[test]
    fn gelu_gradient_matches_finite_difference() {
        let mut g = Gelu::new();
        let x = Matrix::from_vec(1, 5, vec![-2.0, -0.5, 0.0, 0.5, 2.0]);
        let _ = g.forward(&x);
        let dy = Matrix::from_fn(1, 5, |_, _| 1.0);
        let dx = g.backward(&dy);
        let eps = 1e-3;
        for c in 0..5 {
            let numeric =
                (gelu_scalar(x.get(0, c) + eps) - gelu_scalar(x.get(0, c) - eps)) / (2.0 * eps);
            assert!((numeric - dx.get(0, c)).abs() < 1e-2, "col {c}");
        }
    }

    #[test]
    fn module_utilities() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = Linear::new(&mut rng, 4, 3);
        assert_eq!(layer.n_params(), 4 * 3 + 3);
        let x = init::normal(&mut rng, 1, 4, 1.0);
        let y = layer.forward(&x);
        layer.backward(&y);
        let mut any_nonzero = false;
        layer.visit_params(&mut |_, g| any_nonzero |= g.iter().any(|&v| v != 0.0));
        assert!(any_nonzero);
        layer.zero_grad();
        let mut all_zero = true;
        layer.visit_params(&mut |_, g| all_zero &= g.iter().all(|&v| v == 0.0));
        assert!(all_zero);
    }

    #[test]
    fn inference_into_variants_match_allocating_forms_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let lin = Linear::new(&mut rng, 6, 4);
        let ln = LayerNorm::new(6);
        let gelu = Gelu::new();
        let emb = Embedding::new(&mut rng, 9, 6);
        let x = init::normal(&mut rng, 5, 6, 1.3);
        let bits = |m: &Matrix| m.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();

        let mut lin_out = Matrix::zeros(5, 4);
        lin_out.data_mut().fill(f32::NAN);
        lin.forward_inference_into(&x, &mut lin_out);
        assert_eq!(bits(&lin.forward_inference(&x)), bits(&lin_out));

        let mut ln_out = Matrix::zeros(5, 6);
        ln_out.data_mut().fill(f32::NAN);
        ln.forward_inference_into(&x, &mut ln_out);
        assert_eq!(bits(&ln.forward_inference(&x)), bits(&ln_out));

        let mut gelu_out = Matrix::zeros(5, 6);
        gelu_out.data_mut().fill(f32::NAN);
        gelu.forward_inference_into(&x, &mut gelu_out);
        assert_eq!(bits(&gelu.forward_inference(&x)), bits(&gelu_out));

        // lookup_span fills a row range of a packed matrix with the same
        // bytes lookup produces for the same ids.
        let ids = [1usize, 8, 3];
        let mut packed = Matrix::zeros(5, 6);
        emb.lookup_span(&ids, &mut packed, 2);
        let single = emb.lookup(&ids);
        for r in 0..3 {
            assert_eq!(packed.row(2 + r), single.row(r));
        }
        assert!(packed.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sigmoid_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }
}
