//! Loss functions: fused softmax + cross-entropy with an ignore index
//! (needed for masked-language-model training where only masked positions
//! contribute), and mean-squared error for regression heads.

use crate::matrix::Matrix;

/// Sentinel target meaning "no loss at this position".
pub const IGNORE_INDEX: usize = usize::MAX;

/// Fused softmax cross-entropy.
///
/// `logits` is `n × classes`, `targets` has length `n` with entries in
/// `0..classes` or [`IGNORE_INDEX`]. Returns `(mean_loss, dlogits)` where the
/// gradient is already divided by the number of contributing positions.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), targets.len());
    let classes = logits.cols();
    let mut probs = logits.clone();
    probs.softmax_rows();
    let mut dlogits = Matrix::zeros(logits.rows(), classes);
    let mut loss = 0.0f64;
    let mut n = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        if t == IGNORE_INDEX {
            continue;
        }
        assert!(t < classes, "target {t} out of range {classes}");
        n += 1;
        let p = probs.get(r, t).max(1e-12);
        loss += -(p as f64).ln();
        for c in 0..classes {
            let grad = probs.get(r, c) - if c == t { 1.0 } else { 0.0 };
            dlogits.set(r, c, grad);
        }
    }
    if n == 0 {
        return (0.0, dlogits);
    }
    let scale = 1.0 / n as f32;
    dlogits.scale(scale);
    ((loss / n as f64) as f32, dlogits)
}

/// Mean squared error over all elements. Returns `(loss, dpred)`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!((pred.rows(), pred.cols()), (target.rows(), target.cols()));
    let n = (pred.rows() * pred.cols()).max(1) as f32;
    let mut diff = pred.clone();
    diff.sub_assign(target);
    let loss = diff.data().iter().map(|v| v * v).sum::<f32>() / n;
    let grad = diff.map(|v| 2.0 * v / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Matrix::from_vec(2, 3, vec![10.0, 0.0, 0.0, 0.0, 0.0, 10.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2]);
        assert!(loss < 1e-3, "loss {loss}");
        assert!(grad.norm() < 1e-3);
    }

    #[test]
    fn uniform_logits_loss_is_ln_classes() {
        let logits = Matrix::zeros(4, 5);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (5.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn ignore_index_positions_contribute_nothing() {
        let logits = Matrix::from_vec(3, 2, vec![5.0, 0.0, 0.0, 5.0, 3.0, 3.0]);
        let (loss_all, _) = softmax_cross_entropy(&logits, &[0, 1, 0]);
        let (loss_masked, grad) = softmax_cross_entropy(&logits, &[0, 1, IGNORE_INDEX]);
        assert!(loss_masked < loss_all);
        // Ignored row has zero gradient.
        assert_eq!(grad.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn all_ignored_is_zero() {
        let logits = Matrix::zeros(2, 3);
        let (loss, grad) = softmax_cross_entropy(&logits, &[IGNORE_INDEX, IGNORE_INDEX]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Matrix::from_vec(2, 3, vec![0.3, -0.2, 0.9, 1.0, 0.1, -0.5]);
        let targets = [2usize, 0usize];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3;
        for (r, c) in [(0, 0), (0, 2), (1, 1)] {
            let mut lp = logits.clone();
            lp.set(r, c, logits.get(r, c) + eps);
            let mut lm = logits.clone();
            lm.set(r, c, logits.get(r, c) - eps);
            let (loss_p, _) = softmax_cross_entropy(&lp, &targets);
            let (loss_m, _) = softmax_cross_entropy(&lm, &targets);
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.get(r, c)).abs() < 1e-3,
                "({r},{c}): numeric {numeric} analytic {}",
                grad.get(r, c)
            );
        }
    }

    #[test]
    fn mse_basics() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(grad.get(0, 1), 0.0);
    }
}
