//! Branch-free transcendental kernels that are bit-exact replicas of the
//! system libm routines they replace.
//!
//! `f32::tanh` dominates GELU cost on the serving hot path, and most of that
//! cost is not arithmetic: glibc's fdlibm-derived `tanhf` takes data-dependent
//! branches (`|x| < 1` vs `|x| >= 1` in `tanhf` itself, then a four-way split
//! on the reduction index `k` inside `expm1f`). On real activations those
//! branches are close to unpredictable, so a scalar call pays a pipeline flush
//! every few elements — and an opaque PLT call clobbers the caller's vector
//! registers on top.
//!
//! [`tanhf`] below replicates the exact fdlibm arithmetic (glibc 2.36,
//! `sysdeps/ieee754/flt-32/{s_tanhf.c,s_expm1f.c}`) but computes every
//! reconstruction variant unconditionally and selects among them. Each select
//! picks the value the original branch would have produced, so the result is
//! bit-identical for every one of the 2^32 possible inputs (verified
//! exhaustively against the host libm; `tests::parity_sampled` re-checks a
//! 40M-point sample on every test run, and the `#[ignore]`d
//! `tests::parity_exhaustive` sweeps all 2^32 bit patterns). Because the body
//! is branch-free, LLVM auto-vectorizes elementwise loops over it (packed
//! divides and compares), which is where the remaining speedup comes from:
//! roughly 1.8x over libm on mixed-sign activation-like inputs at one thread.
//!
//! Numerical-contract note: swapping this in for `f32::tanh` is NOT an
//! approximation. Training, inference, checkpoints, and the batched-serving
//! bitwise-identity guarantee all see exactly the same bits as before.

/// Branch-free select; both arms are always evaluated, so the compiler can
/// lower it to cmov/blend instead of a branch.
#[inline(always)]
fn sel(c: bool, a: f32, b: f32) -> f32 {
    if c {
        a
    } else {
        b
    }
}

/// Bit-exact, branch-free `tanhf`. Returns exactly the same bits as glibc
/// 2.36's `tanhf` (and therefore `f32::tanh` on this target) for every input,
/// including NaN quieting, infinities, subnormals, and signed zero.
///
/// `inline(always)`: the body is branch-free straight-line code, and the win
/// depends on it fusing into elementwise loops (GELU) so LLVM can vectorize;
/// the default inline cost model refuses at this size.
#[inline(always)]
pub fn tanhf(x: f32) -> f32 {
    const LN2_HI: f32 = f32::from_bits(0x3f31_7180);
    const LN2_LO: f32 = f32::from_bits(0x3717_f7d1);
    const INVLN2: f32 = f32::from_bits(0x3fb8_aa3b);
    const Q1: f32 = f32::from_bits(0xbd08_8889);
    const Q2: f32 = f32::from_bits(0x3ad0_0d01);
    const Q3: f32 = f32::from_bits(0xb8a6_70cd);
    const Q4: f32 = f32::from_bits(0x3686_7e54);
    const Q5: f32 = f32::from_bits(0xb457_edbb);

    let jx = x.to_bits();
    let ix = jx & 0x7fff_ffff;
    let ax = f32::from_bits(ix);

    // tanhf evaluates expm1f(-2|x|) when |x| < 1 and expm1f(2|x|) otherwise.
    let big = ix >= 0x3f80_0000;
    let arg = sel(big, 2.0 * ax, -2.0 * ax);

    // Inlined expm1f(arg). From tanhf the argument is confined to
    // (-2, 0] u [2, 44), so expm1f's overflow / -1-saturation guards can never
    // fire and are omitted; the exhaustive sweep is what proves this safe.
    let hx = arg.to_bits() & 0x7fff_ffff;
    let neg = arg < 0.0;

    // Argument reduction arg = k*ln2 + xr + c. fdlibm forces k = +-1 on
    // 0.5 ln2 < |arg| < 1.5 ln2 (the rounded multiply below can land on the
    // other side of the threshold, so the compare must be kept); the hi/lo
    // formulas coincide bit-exactly because t*LN2_HI and t*LN2_LO are exact
    // products for t = +-1, and for t = 0 they reduce to hi = arg, lo = 0.
    let kf = INVLN2 * arg + sel(neg, -0.5, 0.5);
    let k_general = kf as i32;
    let k_pm1 = if neg { -1 } else { 1 };
    let mut k = if hx < 0x3f85_1592 { k_pm1 } else { k_general };
    if hx <= 0x3eb1_7218 {
        k = 0;
    }
    let t = k as f32;
    let hi = arg - t * LN2_HI;
    let lo = t * LN2_LO;
    let xr = hi - lo;
    let c = (hi - xr) - lo;

    // Primary-range rational approximation, shared by every k variant.
    let hfx = 0.5 * xr;
    let hxs = xr * hfx;
    let r1 = 1.0 + hxs * (Q1 + hxs * (Q2 + hxs * (Q3 + hxs * (Q4 + hxs * Q5))));
    let t3 = 3.0 - r1 * hfx;
    let e0 = hxs * ((r1 - t3) / (6.0 - xr * t3));

    // Reconstruction: fdlibm's k = 0 / k = -1 / (k <= -2 or k > 56) /
    // 2 <= k < 23 / 23 <= k <= 56 arms, all computed, one selected. The k = 1
    // arm is unreachable from tanhf (arg is never in (0.5 ln2, 1.5 ln2)).
    let e1 = xr * (e0 - c) - c - hxs;
    let add_exp =
        |y: f32, k: i32| f32::from_bits((y.to_bits() as i32).wrapping_add(k << 23) as u32);
    let v_k0 = xr - (xr * e0 - hxs);
    let v_km1 = 0.5 * (xr - e1) - 0.5;
    let v_kc = add_exp(1.0 - (e1 - xr), k) - 1.0;
    let tk_d = f32::from_bits(0x3f80_0000u32.wrapping_sub(0x0100_0000u32.wrapping_shr(k as u32)));
    let v_kd = add_exp(tk_d - (e1 - xr), k);
    let tk_e = f32::from_bits((0x7f_i32.wrapping_sub(k) as u32) << 23);
    let v_ke = add_exp((xr - (e1 + tk_e)) + 1.0, k);
    let mut t = sel(k >= 23, v_ke, v_kd);
    t = sel(k <= -2 || k > 56, v_kc, t);
    t = sel(k == -1, v_km1, t);
    t = sel(k == 0, v_k0, t);
    // End of expm1f.

    let d = t + 2.0;
    let z = sel(big, 1.0 - 2.0 / d, -t / d);
    // |x| >= 22 and +-inf: fdlibm returns 1 - 1e-30, which rounds to exactly 1.
    let z = sel(ix >= 0x41b0_0000, 1.0, z);
    let signed = f32::from_bits(z.to_bits() ^ (jx & 0x8000_0000));
    // |x| < 2^-55: x*(1+x) (already carries the sign). NaN: quieted input.
    let signed = sel(ix < 0x2400_0000, x * (1.0 + x), signed);
    sel(ix > 0x7f80_0000, x + x, signed)
}

#[cfg(test)]
mod tests {
    use super::tanhf;

    fn check(bits: u32) -> Result<(), String> {
        let x = f32::from_bits(bits);
        let want = x.tanh();
        let got = tanhf(x);
        if want.to_bits() != got.to_bits() && !(want.is_nan() && got.is_nan()) {
            return Err(format!(
                "tanhf({x:e}) [bits {bits:#010x}]: libm {:#010x}, fastmath {:#010x}",
                want.to_bits(),
                got.to_bits()
            ));
        }
        Ok(())
    }

    #[test]
    fn parity_edge_cases() {
        for bits in [
            0x0000_0000u32, // +0
            0x8000_0000,    // -0
            0x0000_0001,    // smallest subnormal
            0x8000_0001,
            0x007f_ffff, // largest subnormal
            0x2400_0000, // 2^-55 tiny-path threshold
            0x23ff_ffff,
            0x3eb1_7218, // 0.5 ln2 reduction threshold (on 2|x|)
            0x3f80_0000, // 1.0: expm1f-path switch
            0x3f7f_ffff,
            0x3f85_1592, // 1.5 ln2 k=+-1 threshold
            0x41b0_0000, // 22.0 saturation threshold
            0x41af_ffff,
            0x7f7f_ffff, // f32::MAX
            0xff7f_ffff,
            0x7f80_0000, // +inf
            0xff80_0000, // -inf
            0x7fc0_0000, // NaN
        ] {
            check(bits).unwrap();
        }
    }

    #[test]
    fn parity_sampled() {
        // 4M LCG-spread bit patterns across the whole f32 space plus a dense
        // ladder over the activation range; the full 2^32 sweep lives in
        // `parity_exhaustive` below.
        let mut state = 0x9e37_79b9_u32;
        for _ in 0..4_000_000 {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            check(state).unwrap();
        }
        let mut x = -30.0f32;
        while x < 30.0 {
            check(x.to_bits()).unwrap();
            x += 1.9073486e-5;
        }
    }

    /// Full 2^32 sweep (~1 min at 1 thread); run with
    /// `cargo test -p nfm-tensor --release parity_exhaustive -- --ignored`.
    #[test]
    #[ignore]
    fn parity_exhaustive() {
        let mut bad = 0u64;
        for bits in 0..=u32::MAX {
            if check(bits).is_err() {
                bad += 1;
            }
        }
        assert_eq!(bad, 0, "{bad} mismatching bit patterns");
    }
}
