//! Property-based invariants for the checkpoint wire format: round trips
//! are bitwise exact, and every corruption (truncation, bit flips, version
//! bumps) yields a typed error — never a panic, never silent garbage.

use nfm_tensor::checkpoint::{
    adam_from_bytes, adam_to_bytes, matrix_from_bytes, matrix_to_bytes, read_record, write_record,
    CheckpointError, KIND_MATRIX,
};
use nfm_tensor::matrix::Matrix;
use nfm_tensor::optim::{Adam, Schedule};
use proptest::prelude::*;

fn matrix_from(rows: usize, cols: usize, values: &[f32]) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|i| values[i % values.len()]).collect();
    Matrix::from_vec(rows, cols, data)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matrix_round_trip_is_bitwise(
        rows in 1usize..8,
        cols in 1usize..8,
        values in proptest::collection::vec(-1e6f32..1e6, 1..32),
    ) {
        let m = matrix_from(rows, cols, &values);
        let bytes = matrix_to_bytes(&m);
        let back = matrix_from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(back.rows(), m.rows());
        prop_assert_eq!(back.cols(), m.cols());
        let a: Vec<u32> = m.data().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = back.data().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn any_truncation_is_a_typed_error(
        rows in 1usize..6,
        cols in 1usize..6,
        values in proptest::collection::vec(-10.0f32..10.0, 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = matrix_to_bytes(&matrix_from(rows, cols, &values));
        // Any strict prefix must fail loudly.
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(matrix_from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn any_single_bit_flip_is_a_typed_error(
        rows in 1usize..6,
        cols in 1usize..6,
        values in proptest::collection::vec(-10.0f32..10.0, 1..16),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut bytes = matrix_to_bytes(&matrix_from(rows, cols, &values));
        let pos = (((bytes.len() as f64) * pos_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        // Header damage trips magic/version/kind/length checks; payload
        // damage trips the CRC. Either way: Err, no panic.
        prop_assert!(matrix_from_bytes(&bytes).is_err());
    }

    #[test]
    fn future_format_versions_are_rejected(
        payload in proptest::collection::vec(0u8..=255, 0..64),
        bump in 1u16..100,
    ) {
        let mut bytes = write_record(KIND_MATRIX, &payload);
        // Bytes 4..6 hold the little-endian format version.
        let v = u16::from_le_bytes([bytes[4], bytes[5]]).wrapping_add(bump);
        bytes[4..6].copy_from_slice(&v.to_le_bytes());
        match read_record(&bytes, KIND_MATRIX) {
            Err(CheckpointError::UnsupportedVersion(found)) => prop_assert_eq!(found, v),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other),
        }
    }

    #[test]
    fn adam_state_round_trip_is_bitwise(
        t in 0usize..10_000,
        lr_scale in 0.01f32..2.0,
        moments in proptest::collection::vec(-1.0f32..1.0, 1..24),
    ) {
        let mut opt = Adam::new(Schedule::WarmupLinear { peak: 1e-3, warmup: 10, total: 100 });
        // Drive the optimizer to a synthetic state, then round-trip it.
        opt.set_lr_scale(lr_scale);
        opt.restore_state(t, vec![moments.clone()], vec![moments.clone()]);
        let back = adam_from_bytes(&adam_to_bytes(&opt)).expect("round trip");
        let (bt, bm, bv) = back.state();
        prop_assert_eq!(bt, t);
        prop_assert_eq!(back.lr_scale().to_bits(), lr_scale.to_bits());
        let bits = |vs: &[Vec<f32>]| -> Vec<u32> {
            vs.iter().flat_map(|v| v.iter().map(|x| x.to_bits())).collect()
        };
        prop_assert_eq!(bits(bm), bits(std::slice::from_ref(&moments)));
        prop_assert_eq!(bits(bv), bits(&[moments]));
    }
}
