//! Property-based invariants for the tensor substrate: matrix algebra laws,
//! softmax/layernorm analytic properties, optimizer and loss behaviour on
//! random inputs.

use nfm_tensor::layers::{Gelu, LayerNorm, Linear, Module};
use nfm_tensor::loss::{softmax_cross_entropy, IGNORE_INDEX};
use nfm_tensor::matrix::{cosine, Matrix};
use nfm_tensor::optim::{clip_global_norm, Adam, Schedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in arb_matrix(3, 4),
        b in arb_matrix(4, 5),
        c in arb_matrix(4, 5),
    ) {
        // a(b + c) == ab + ac
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involution(a in arb_matrix(4, 7)) {
        let tt = a.transpose().transpose();
        prop_assert_eq!(tt.data(), a.data());
    }

    #[test]
    fn matmul_transpose_identity(a in arb_matrix(3, 4), b in arb_matrix(4, 2)) {
        // (ab)ᵀ == bᵀaᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in arb_matrix(5, 6)) {
        let mut m = a;
        m.softmax_rows();
        for r in 0..m.rows() {
            let row = m.row(r);
            prop_assert!(row.iter().all(|v| *v >= 0.0 && *v <= 1.0));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row sum {sum}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in arb_matrix(2, 5), shift in -10.0f32..10.0) {
        let mut m1 = a.clone();
        m1.softmax_rows();
        let mut m2 = a.map(|v| v + shift);
        m2.softmax_rows();
        for (x, y) in m1.data().iter().zip(m2.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn layernorm_output_statistics(a in arb_matrix(4, 8)) {
        let ln = LayerNorm::new(8);
        let y = ln.forward_inference(&a);
        for r in 0..y.rows() {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "mean {mean}");
        }
    }

    #[test]
    fn cosine_bounds(v in proptest::collection::vec(-5.0f32..5.0, 8), w in proptest::collection::vec(-5.0f32..5.0, 8)) {
        let c = cosine(&v, &w);
        prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&c));
        // Self-similarity is 1 for non-zero vectors.
        if v.iter().any(|x| x.abs() > 1e-3) {
            prop_assert!((cosine(&v, &v) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cross_entropy_nonnegative_and_grad_rows_sum_zero(
        logits in arb_matrix(4, 6),
        targets in proptest::collection::vec(0usize..6, 4),
    ) {
        let (loss, grad) = softmax_cross_entropy(&logits, &targets);
        prop_assert!(loss >= 0.0);
        // Each contributing row of the gradient sums to zero
        // (softmax minus one-hot).
        for r in 0..4 {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-4, "row {r} sums to {s}");
        }
    }

    #[test]
    fn ignore_index_never_contributes(logits in arb_matrix(3, 4)) {
        let (loss_none, grad) =
            softmax_cross_entropy(&logits, &[IGNORE_INDEX, IGNORE_INDEX, IGNORE_INDEX]);
        prop_assert_eq!(loss_none, 0.0);
        prop_assert_eq!(grad.norm(), 0.0);
    }

    #[test]
    fn clip_never_increases_norm(seed in 0u64..1000, max_norm in 0.1f32..10.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(&mut rng, 5, 5);
        let x = nfm_tensor::init::normal(&mut rng, 3, 5, 2.0);
        let y = layer.forward(&x);
        layer.backward(&y);
        clip_global_norm(&mut layer, max_norm);
        let mut sq = 0.0f32;
        layer.visit_params(&mut |_, g| {
            for v in g {
                sq += *v * *v;
            }
        });
        prop_assert!(sq.sqrt() <= max_norm + 1e-3);
    }

    #[test]
    fn adam_keeps_params_finite(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Linear::new(&mut rng, 4, 3);
        let mut opt = Adam::new(Schedule::Constant(0.01));
        let x = nfm_tensor::init::normal(&mut rng, 2, 4, 1.0);
        for _ in 0..20 {
            layer.zero_grad();
            let y = layer.forward(&x);
            layer.backward(&y);
            opt.step(&mut layer);
        }
        prop_assert!(layer.w.is_finite());
    }

    #[test]
    fn gelu_is_monotone_above_its_minimum(a in -0.7f32..4.0, delta in 0.01f32..1.0) {
        // GELU has its minimum near x ≈ -0.75 and is monotone increasing
        // to the right of it; check on [-0.7, 5].
        let g = Gelu::new();
        let x = Matrix::from_vec(1, 2, vec![a, a + delta]);
        let y = g.forward_inference(&x);
        prop_assert!(y.get(0, 1) >= y.get(0, 0) - 1e-4);
    }

    #[test]
    fn vstack_rows_slice_inverse(a in arb_matrix(2, 3), b in arb_matrix(4, 3)) {
        let stacked = Matrix::vstack(&[&a, &b]);
        let top = stacked.rows_slice(0, 2);
        let bottom = stacked.rows_slice(2, 4);
        prop_assert_eq!(top.data(), a.data());
        prop_assert_eq!(bottom.data(), b.data());
    }
}
