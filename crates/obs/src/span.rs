//! Span timers: scoped regions that meter wall time and deterministic cost.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::metrics::Histogram;
use crate::sink;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn reset_ids() {
    NEXT_ID.store(1, Ordering::Relaxed);
}

/// A scoped timer opened by the [`crate::span!`] macro.
///
/// While alive, the span sits on a thread-local stack so nested spans record
/// their parent's id. On drop it:
///
/// 1. records elapsed wall time into its `<name>.wall_us` histogram
///    (non-deterministic, excluded from the JSONL metrics snapshot);
/// 2. records any cost charged via [`Span::add_cost`] into `<name>.cost`
///    (deterministic MAC-style units);
/// 3. emits a `span` JSONL record carrying name, id, parent id, and cost —
///    but never wall time — so traces are bitwise-reproducible.
///
/// Span ids come from one process-wide counter: they are deterministic as
/// long as spans are opened in a deterministic order (i.e. from the main
/// thread, not inside pool workers).
pub struct Span {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    cost: u64,
    wall_hist: &'static Histogram,
    cost_hist: &'static Histogram,
}

impl Span {
    /// Open a span. Prefer the [`crate::span!`] macro, which derives the two
    /// histograms from the span name at compile time.
    pub fn enter(
        name: &'static str,
        wall_hist: &'static Histogram,
        cost_hist: &'static Histogram,
    ) -> Span {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let parent = STACK.with(|s| {
            let mut st = s.borrow_mut();
            let parent = st.last().copied();
            st.push(id);
            parent
        });
        Span { name, id, parent, start: Instant::now(), cost: 0, wall_hist, cost_hist }
    }

    /// This span's id (unique within the process until [`crate::reset`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the span this one is nested inside, if any.
    pub fn parent(&self) -> Option<u64> {
        self.parent
    }

    /// Charge deterministic cost units (e.g. MACs) to this span,
    /// saturating at `u64::MAX`.
    pub fn add_cost(&mut self, units: u64) {
        self.cost = self.cost.saturating_add(units);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            // Spans normally drop in LIFO order; tolerate out-of-order drops
            // (e.g. spans moved out of their scope) by removing by id.
            if st.last() == Some(&self.id) {
                st.pop();
            } else {
                st.retain(|&x| x != self.id);
            }
        });
        let wall_us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.wall_hist.observe(wall_us);
        if self.cost > 0 {
            self.cost_hist.observe(self.cost);
        }
        sink::span_event(self.name, self.id, self.parent, self.cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unit;

    fn hists() -> (&'static Histogram, &'static Histogram) {
        static EDGES: &[u64] = &[1_000_000];
        (
            crate::global().histogram("t.span.wall_us", Unit::Micros, EDGES),
            crate::global().histogram("t.span.cost", Unit::Cost, EDGES),
        )
    }

    #[test]
    fn nesting_links_parents() {
        let (w, c) = hists();
        let outer = Span::enter("outer", w, c);
        assert_eq!(outer.parent(), None);
        {
            let mid = Span::enter("mid", w, c);
            assert_eq!(mid.parent(), Some(outer.id()));
            let inner = Span::enter("inner", w, c);
            assert_eq!(inner.parent(), Some(mid.id()));
        }
        // Siblings after the nested scope closed re-attach to `outer`.
        let sibling = Span::enter("sibling", w, c);
        assert_eq!(sibling.parent(), Some(outer.id()));
    }

    #[test]
    fn drop_records_wall_and_cost() {
        let (w, c) = hists();
        let wall_before = w.count();
        let cost_before = c.count();
        {
            let mut sp = Span::enter("cost-span", w, c);
            sp.add_cost(40);
            sp.add_cost(2);
        }
        assert_eq!(w.count(), wall_before + 1);
        assert_eq!(c.count(), cost_before + 1);
        assert!(c.sum() >= cost_before + 42);
        {
            let _zero = Span::enter("zero-cost", w, c);
        }
        // Zero-cost spans skip the cost histogram to keep it meaningful.
        assert_eq!(c.count(), cost_before + 1);
    }
}
