//! Unified observability for the `nfm` workspace: a metrics registry, span
//! tracing, and a JSONL event sink — with zero dependencies and a hard
//! determinism discipline.
//!
//! Every layer of the stack (tensor pool, matmul kernels, pre-training,
//! fine-tuning, the serving engine) reports into one global
//! [`MetricsRegistry`] of counters, gauges, and fixed-bucket histograms keyed
//! by `&'static str` names. The full metric and event catalogue lives in
//! `OBSERVABILITY.md` at the repository root.
//!
//! # Determinism contract
//!
//! The workspace's experiments assert bitwise reproducibility under a fixed
//! seed, and the observability layer must not break that:
//!
//! * Counters and histograms are integer-valued with order-independent
//!   (atomic, saturating) addition, so their final values do not depend on
//!   thread interleaving.
//! * Spans meter **two** quantities: non-deterministic wall time, recorded
//!   into a `*.wall_us` histogram, and deterministic cost units (the MAC
//!   counts used by `forward_inference_within` budgets), recorded into a
//!   `*.cost` histogram and attached to the span's JSONL event.
//! * The JSONL sink ([`emit_metrics`]) skips every metric whose [`Unit`] is
//!   wall-clock (`us`) unless `NFM_OBS_WALL` is set, so two seeded runs of
//!   the same binary produce **byte-identical** event streams. Wall times
//!   still appear in the rendered table ([`render_metrics`]).
//!
//! # Usage
//!
//! ```
//! use nfm_obs::Unit;
//!
//! // Counters/gauges/histograms: the macro caches the registry lookup at
//! // the call site, so hot paths pay one atomic add per hit.
//! nfm_obs::counter!("demo.requests").inc();
//! nfm_obs::counter!("demo.macs", Unit::Macs).add(1 << 20);
//! nfm_obs::gauge!("demo.queue.depth").set(3.0);
//! nfm_obs::histogram!("demo.latency_us", Unit::Micros, nfm_obs::WALL_EDGES).observe(42);
//!
//! // Spans: wall time on drop, plus explicit deterministic cost units.
//! {
//!     let mut span = nfm_obs::span!("demo.step");
//!     span.add_cost(1_000); // e.g. MACs charged by the kernel
//! }
//!
//! // Events: named JSONL records (no-ops unless a sink is installed).
//! nfm_obs::event("demo.rollback", &[("epoch", nfm_obs::Value::U(3))]);
//! ```
//!
//! Set `NFM_OBS_OUT=/path/to/run.jsonl` before launching a binary to stream
//! events to a file; tests install an in-memory sink via [`install_buffer`].

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod render;
mod sink;
mod span;

pub use metrics::{
    global, Counter, Gauge, Histogram, MetricSnapshot, MetricValue, MetricsRegistry, Unit,
};
pub use render::render_metrics;
pub use sink::{
    disable, emit_metrics, emit_table, enabled, event, flush, install_buffer, set_writer, Value,
};
pub use span::Span;

/// Default bucket upper bounds (inclusive, microseconds) for wall-time
/// histograms: 10 µs … 10 s in decades, plus an overflow bucket.
pub const WALL_EDGES: &[u64] = &[10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Default bucket upper bounds (inclusive, cost units ≈ MACs) for
/// deterministic-cost histograms: 1 K … 1 G in decades, plus overflow.
pub const COST_EDGES: &[u64] =
    &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000];

/// Default bucket upper bounds (inclusive, thousandths) for milli-unit
/// histograms such as gradient norms: 0.001 … 1000.0, plus overflow.
pub const NORM_EDGES: &[u64] = &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

/// Reset all global observability state: zero every registered metric,
/// rewind the JSONL sequence number, and restart span ids at 1.
///
/// Intended for tests and double-run determinism harnesses; the installed
/// sink writer (if any) is left in place.
pub fn reset() {
    metrics::global().reset();
    sink::reset_seq();
    span::reset_ids();
}

/// Look up (and on first use register) a [`Counter`] in the global registry,
/// caching the `&'static` handle at the call site.
///
/// `counter!("name")` uses [`Unit::Count`]; `counter!("name", unit)` sets an
/// explicit unit. The name must be unique across metric kinds.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, $crate::Unit::Count)
    };
    ($name:expr, $unit:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::global().counter($name, $unit))
    }};
}

/// Look up (and on first use register) a [`Gauge`] in the global registry,
/// caching the `&'static` handle at the call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {
        $crate::gauge!($name, $crate::Unit::Count)
    };
    ($name:expr, $unit:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::global().gauge($name, $unit))
    }};
}

/// Look up (and on first use register) a [`Histogram`] in the global
/// registry, caching the `&'static` handle at the call site.
///
/// `$edges` must be a `&'static [u64]` of strictly increasing inclusive
/// upper bounds (see [`WALL_EDGES`] / [`COST_EDGES`] / [`NORM_EDGES`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr, $unit:expr, $edges:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::global().histogram($name, $unit, $edges))
    }};
}

/// Open a [`Span`] named by a string literal. On drop the span records its
/// wall time into `<name>.wall_us`, any cost charged via [`Span::add_cost`]
/// into `<name>.cost`, and emits a deterministic JSONL `span` event (id,
/// parent id, cost — never wall time).
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::Span::enter(
            $name,
            $crate::histogram!(
                concat!($name, ".wall_us"),
                $crate::Unit::Micros,
                $crate::WALL_EDGES
            ),
            $crate::histogram!(concat!($name, ".cost"), $crate::Unit::Cost, $crate::COST_EDGES),
        )
    };
}
