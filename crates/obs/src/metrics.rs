//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! All metric values are updated with order-independent atomic operations so
//! that final values are identical regardless of worker-thread interleaving
//! — the same discipline `nfm_tensor::pool` applies to float reductions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// The unit a metric is denominated in. Units double as the determinism
/// gate: wall-clock units are excluded from the JSONL snapshot by default
/// (see [`crate::emit_metrics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// A dimensionless count of events or items.
    Count,
    /// Multiply-accumulate operations (the kernel cost model's currency).
    Macs,
    /// Deterministic inference cost units (`Encoder::inference_cost`).
    Cost,
    /// Wall-clock microseconds — **non-deterministic**, excluded from the
    /// JSONL metrics snapshot unless `NFM_OBS_WALL` is set.
    Micros,
    /// Thousandths of a dimensionless quantity (e.g. gradient norms stored
    /// as `(norm * 1000) as u64`).
    Milli,
}

impl Unit {
    /// The stable string form used in JSONL records and rendered tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Unit::Count => "count",
            Unit::Macs => "macs",
            Unit::Cost => "cost_units",
            Unit::Micros => "us",
            Unit::Milli => "milli",
        }
    }

    /// Whether values in this unit are bitwise-reproducible across runs
    /// with identical seeds. Only wall-clock units are not.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, Unit::Micros)
    }
}

/// Saturating atomic add: the counter pins at `u64::MAX` instead of
/// wrapping, so overflow can never masquerade as a small value.
fn saturating_add(cell: &AtomicU64, v: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// A monotonically increasing integer metric with saturating addition.
pub struct Counter {
    name: &'static str,
    unit: Unit,
    value: AtomicU64,
}

impl Counter {
    /// The registry key this counter was registered under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unit this counter is denominated in.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Add `v`, saturating at `u64::MAX`.
    pub fn add(&self, v: u64) {
        saturating_add(&self.value, v);
    }

    /// Add 1, saturating at `u64::MAX`.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point level (queue depth, thread count).
///
/// Gauges are the one metric kind whose final value depends on write order;
/// instrumentation must only set them from a single (main) thread when a
/// deterministic snapshot is required — the pool instrumentation skips gauge
/// writes from inside worker threads for exactly this reason.
pub struct Gauge {
    name: &'static str,
    unit: Unit,
    bits: AtomicU64,
}

impl Gauge {
    /// The registry key this gauge was registered under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unit this gauge is denominated in.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Set the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` counts observations `v <= edges[i]` (inclusive upper bounds);
/// a final overflow bucket catches everything above the last edge. Counts
/// and the saturating integer `sum` are order-independent, so histograms
/// stay bitwise deterministic under the worker pool.
pub struct Histogram {
    name: &'static str,
    unit: Unit,
    edges: &'static [u64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// The registry key this histogram was registered under.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The unit observations are denominated in.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// The inclusive upper bounds of the finite buckets.
    pub fn edges(&self) -> &'static [u64] {
        self.edges
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.edges.partition_point(|&e| e < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        saturating_add(&self.sum, v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// The value part of one [`MetricSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Current counter value.
    Counter(u64),
    /// Current gauge level.
    Gauge(f64),
    /// Histogram state: total observations, saturating sum, and per-bucket
    /// `(upper_edge, count)` pairs where `None` marks the overflow bucket.
    Histogram {
        /// Total number of observations.
        count: u64,
        /// Saturating sum of observed values.
        sum: u64,
        /// `(inclusive upper edge, count)` per bucket; `None` = overflow.
        buckets: Vec<(Option<u64>, u64)>,
    },
}

/// One metric's state at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// The registry key.
    pub name: &'static str,
    /// The metric's unit.
    pub unit: Unit,
    /// The captured value.
    pub value: MetricValue,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

/// A registry of named metrics. Registration leaks one small allocation per
/// unique name and hands out `&'static` handles, so hot paths can cache the
/// handle (via the [`crate::counter!`]-family macros) and skip the lookup.
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry. Prefer [`global`] outside of tests.
    pub const fn new() -> Self {
        MetricsRegistry {
            inner: Mutex::new(Inner {
                counters: BTreeMap::new(),
                gauges: BTreeMap::new(),
                histograms: BTreeMap::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned registry is still structurally sound (all updates are
        // atomic); keep serving rather than cascading the panic.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or register the counter `name`. The first registration's unit
    /// wins; later calls return the existing counter unchanged.
    pub fn counter(&self, name: &'static str, unit: Unit) -> &'static Counter {
        let mut g = self.lock();
        if let Some(c) = g.counters.get(name) {
            return c;
        }
        let c: &'static Counter =
            Box::leak(Box::new(Counter { name, unit, value: AtomicU64::new(0) }));
        g.counters.insert(name, c);
        c
    }

    /// Get or register the gauge `name`. The first registration's unit
    /// wins; later calls return the existing gauge unchanged.
    pub fn gauge(&self, name: &'static str, unit: Unit) -> &'static Gauge {
        let mut g = self.lock();
        if let Some(x) = g.gauges.get(name) {
            return x;
        }
        let x: &'static Gauge = Box::leak(Box::new(Gauge { name, unit, bits: AtomicU64::new(0) }));
        g.gauges.insert(name, x);
        x
    }

    /// Get or register the histogram `name` with the given inclusive bucket
    /// upper bounds. The first registration's unit and edges win; later
    /// calls return the existing histogram unchanged.
    pub fn histogram(
        &self,
        name: &'static str,
        unit: Unit,
        edges: &'static [u64],
    ) -> &'static Histogram {
        let mut g = self.lock();
        if let Some(h) = g.histograms.get(name) {
            return h;
        }
        let buckets = (0..=edges.len()).map(|_| AtomicU64::new(0)).collect();
        let h: &'static Histogram = Box::leak(Box::new(Histogram {
            name,
            unit,
            edges,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }));
        g.histograms.insert(name, h);
        h
    }

    /// Capture every registered metric, sorted by name. The ordering is
    /// deterministic, so snapshot-derived output (tables, JSONL) is too.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let g = self.lock();
        let mut out: Vec<MetricSnapshot> = Vec::new();
        for (&name, c) in &g.counters {
            out.push(MetricSnapshot { name, unit: c.unit(), value: MetricValue::Counter(c.get()) });
        }
        for (&name, x) in &g.gauges {
            out.push(MetricSnapshot { name, unit: x.unit(), value: MetricValue::Gauge(x.get()) });
        }
        for (&name, h) in &g.histograms {
            let counts = h.bucket_counts();
            let buckets =
                counts.iter().enumerate().map(|(i, &n)| (h.edges().get(i).copied(), n)).collect();
            out.push(MetricSnapshot {
                name,
                unit: h.unit(),
                value: MetricValue::Histogram { count: h.count(), sum: h.sum(), buckets },
            });
        }
        out.sort_by_key(|m| m.name);
        out
    }

    /// Zero every registered metric (names and handles stay valid).
    pub fn reset(&self) {
        let g = self.lock();
        for c in g.counters.values() {
            c.reset();
        }
        for x in g.gauges.values() {
            x.reset();
        }
        for h in g.histograms.values() {
            h.reset();
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

static GLOBAL: MetricsRegistry = MetricsRegistry::new();

/// The process-wide registry all instrumentation reports into.
pub fn global() -> &'static MetricsRegistry {
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.saturate", Unit::Count);
        c.add(u64::MAX - 1);
        c.add(5);
        assert_eq!(c.get(), u64::MAX, "additions past MAX must pin, not wrap");
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let reg = MetricsRegistry::new();
        static EDGES: &[u64] = &[10, 100, 1_000];
        let h = reg.histogram("t.edges", Unit::Micros, EDGES);
        // At, below, and just above each edge.
        h.observe(0); // bucket 0 (<= 10)
        h.observe(10); // bucket 0 (inclusive)
        h.observe(11); // bucket 1
        h.observe(100); // bucket 1 (inclusive)
        h.observe(101); // bucket 2
        h.observe(1_000); // bucket 2 (inclusive)
        h.observe(1_001); // overflow
        h.observe(u64::MAX); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
    }

    #[test]
    fn histogram_sum_saturates() {
        let reg = MetricsRegistry::new();
        static EDGES: &[u64] = &[1];
        let h = reg.histogram("t.hsum", Unit::Count, EDGES);
        h.observe(u64::MAX);
        h.observe(7);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registration_is_idempotent_first_unit_wins() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("t.idem", Unit::Macs);
        let b = reg.counter("t.idem", Unit::Count);
        assert!(std::ptr::eq(a, b));
        assert_eq!(b.unit(), Unit::Macs);
    }

    #[test]
    fn snapshot_is_sorted_and_reset_zeroes() {
        let reg = MetricsRegistry::new();
        reg.counter("t.zz", Unit::Count).add(3);
        reg.gauge("t.aa", Unit::Count).set(2.5);
        static EDGES: &[u64] = &[5];
        reg.histogram("t.mm", Unit::Cost, EDGES).observe(4);
        let snap = reg.snapshot();
        let names: Vec<_> = snap.iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["t.aa", "t.mm", "t.zz"]);
        reg.reset();
        for m in reg.snapshot() {
            match m.value {
                MetricValue::Counter(v) => assert_eq!(v, 0),
                MetricValue::Gauge(v) => assert_eq!(v, 0.0),
                MetricValue::Histogram { count, sum, ref buckets } => {
                    assert_eq!((count, sum), (0, 0));
                    assert!(buckets.iter().all(|&(_, n)| n == 0));
                }
            }
        }
    }
}
