//! The JSONL event sink.
//!
//! One line per record, written through a single process-wide writer. The
//! writer is installed from the `NFM_OBS_OUT` environment variable on first
//! use (lazily — binaries need no init call), or explicitly via
//! [`set_writer`] / [`install_buffer`] in tests. With no writer installed
//! every emit is a no-op, so instrumented library code costs one atomic
//! load on the disabled path.
//!
//! Record shapes are documented in `OBSERVABILITY.md`. Every line carries a
//! monotonically increasing `"seq"` field allocated under the writer lock,
//! so line order and sequence numbers always agree.

use std::fmt::Write as _;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{MetricValue, MetricsRegistry};

enum State {
    /// `NFM_OBS_OUT` has not been consulted yet.
    Unprobed,
    /// No sink: emits are no-ops.
    Disabled,
    /// An installed writer.
    Active(Box<dyn Write + Send>),
}

static STATE: Mutex<State> = Mutex::new(State::Unprobed);
static PROBED: AtomicBool = AtomicBool::new(false);
static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

fn lock_state() -> std::sync::MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn probe() {
    let mut g = lock_state();
    if matches!(*g, State::Unprobed) {
        *g = match std::env::var_os("NFM_OBS_OUT") {
            Some(path) => match std::fs::File::create(&path) {
                Ok(f) => {
                    ENABLED.store(true, Ordering::Release);
                    State::Active(Box::new(f))
                }
                Err(e) => {
                    eprintln!("nfm_obs: cannot open {path:?}: {e}; sink disabled");
                    State::Disabled
                }
            },
            None => State::Disabled,
        };
        PROBED.store(true, Ordering::Release);
    }
}

/// Whether a JSONL sink is installed (after lazily consulting
/// `NFM_OBS_OUT` on first call).
pub fn enabled() -> bool {
    if !PROBED.load(Ordering::Acquire) {
        probe();
    }
    ENABLED.load(Ordering::Acquire)
}

/// Install an explicit sink writer, replacing any current one.
pub fn set_writer(w: Box<dyn Write + Send>) {
    let mut g = lock_state();
    *g = State::Active(w);
    PROBED.store(true, Ordering::Release);
    ENABLED.store(true, Ordering::Release);
}

/// Remove the sink; subsequent emits are no-ops (and `NFM_OBS_OUT` is not
/// re-probed).
pub fn disable() {
    let mut g = lock_state();
    *g = State::Disabled;
    PROBED.store(true, Ordering::Release);
    ENABLED.store(false, Ordering::Release);
}

/// Install an in-memory sink and return a handle to its bytes. Test helper
/// for asserting on the exact emitted stream.
pub fn install_buffer() -> Arc<Mutex<Vec<u8>>> {
    let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    struct Shared(Arc<Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    set_writer(Box::new(Shared(Arc::clone(&buf))));
    buf
}

/// Flush the sink writer (no-op when disabled).
pub fn flush() {
    if let State::Active(w) = &mut *lock_state() {
        let _ = w.flush();
    }
}

pub(crate) fn reset_seq() {
    SEQ.store(0, Ordering::Relaxed);
}

/// Build one record under the writer lock (so `seq` allocation and line
/// order agree) and write it with a trailing newline.
fn write_record(build: impl FnOnce(u64, &mut String)) {
    if !enabled() {
        return;
    }
    let mut g = lock_state();
    if let State::Active(w) = &mut *g {
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut line = String::with_capacity(96);
        build(seq, &mut line);
        line.push('\n');
        let _ = w.write_all(line.as_bytes());
    }
}

/// Append `s` JSON-escaped (quotes, backslashes, control characters).
fn esc(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A field value attached to an [`event`].
///
/// Float variants print the shortest round-trip decimal form, which is a
/// pure function of the bits — deterministic whenever the computation that
/// produced the float is. `F32` exists so `f32` losses are not widened to
/// `f64` first (which would print a much longer decimal).
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// An unsigned integer.
    U(u64),
    /// A signed integer.
    I(i64),
    /// A 64-bit float (`NaN`/infinities serialize as `null`).
    F(f64),
    /// A 32-bit float (`NaN`/infinities serialize as `null`).
    F32(f32),
    /// A string (JSON-escaped).
    S(&'a str),
    /// A boolean.
    B(bool),
}

fn push_value(out: &mut String, v: &Value<'_>) {
    match *v {
        Value::U(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F(x) => push_f64(out, x),
        Value::F32(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::S(s) => {
            out.push('"');
            esc(out, s);
            out.push('"');
        }
        Value::B(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Emit a named event record:
/// `{"type":"event","seq":N,"name":...,"fields":{...}}`.
///
/// No-op unless a sink is installed. Field order follows the slice order,
/// so the emitted bytes are deterministic.
pub fn event(name: &str, fields: &[(&str, Value<'_>)]) {
    write_record(|seq, out| {
        let _ = write!(out, "{{\"type\":\"event\",\"seq\":{seq},\"name\":\"");
        esc(out, name);
        out.push_str("\",\"fields\":{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            esc(out, k);
            out.push_str("\":");
            push_value(out, v);
        }
        out.push_str("}}");
    });
}

/// Emit a closed span record:
/// `{"type":"span","seq":N,"name":...,"id":I,"parent":P|null,"cost":C}`.
///
/// Wall time is deliberately absent — it lives in the `<name>.wall_us`
/// histogram instead — so span records are byte-identical across runs.
pub(crate) fn span_event(name: &str, id: u64, parent: Option<u64>, cost: u64) {
    write_record(|seq, out| {
        let _ = write!(out, "{{\"type\":\"span\",\"seq\":{seq},\"name\":\"");
        esc(out, name);
        let _ = write!(out, "\",\"id\":{id},\"parent\":");
        match parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"cost\":{cost}}}");
    });
}

/// Mirror a rendered table into the sink: one `table` record carrying the
/// header, then one `row` record per row.
pub fn emit_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    if !enabled() {
        return;
    }
    write_record(|seq, out| {
        let _ = write!(out, "{{\"type\":\"table\",\"seq\":{seq},\"title\":\"");
        esc(out, title);
        out.push_str("\",\"header\":[");
        for (i, h) in header.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            esc(out, h);
            out.push('"');
        }
        out.push_str("]}");
    });
    for row in rows {
        write_record(|seq, out| {
            let _ = write!(out, "{{\"type\":\"row\",\"seq\":{seq},\"title\":\"");
            esc(out, title);
            out.push_str("\",\"cells\":[");
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                esc(out, cell);
                out.push('"');
            }
            out.push_str("]}");
        });
    }
}

/// Emit one `metric` record per registered metric, sorted by name.
///
/// Metrics in non-deterministic units (wall time) are skipped unless the
/// `NFM_OBS_WALL` environment variable is set, so the default stream is
/// byte-identical across seeded runs.
pub fn emit_metrics(reg: &MetricsRegistry) {
    if !enabled() {
        return;
    }
    let include_wall = std::env::var_os("NFM_OBS_WALL").is_some();
    for m in reg.snapshot() {
        if !m.unit.is_deterministic() && !include_wall {
            continue;
        }
        write_record(|seq, out| {
            let _ = write!(out, "{{\"type\":\"metric\",\"seq\":{seq},\"name\":\"");
            esc(out, m.name);
            let _ = write!(out, "\",\"unit\":\"{}\",", m.unit.as_str());
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "\"kind\":\"counter\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    out.push_str("\"kind\":\"gauge\",\"value\":");
                    push_f64(out, *v);
                    out.push('}');
                }
                MetricValue::Histogram { count, sum, buckets } => {
                    let _ = write!(out, "\"kind\":\"histogram\",\"count\":{count},\"sum\":{sum},");
                    out.push_str("\"buckets\":[");
                    for (i, (edge, n)) in buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        match edge {
                            Some(e) => {
                                let _ = write!(out, "[{e},{n}]");
                            }
                            None => {
                                let _ = write!(out, "[null,{n}]");
                            }
                        }
                    }
                    out.push_str("]}");
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Unit;
    use std::sync::OnceLock;

    /// Sink state is process-global; serialize the tests that touch it.
    fn sink_guard() -> std::sync::MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    fn drain(buf: &Arc<Mutex<Vec<u8>>>) -> String {
        String::from_utf8(buf.lock().unwrap().clone()).unwrap()
    }

    #[test]
    fn events_escape_json_and_carry_seq() {
        let _g = sink_guard();
        crate::reset();
        let buf = install_buffer();
        event("quote\"break", &[("msg", Value::S("a\\b\nc")), ("n", Value::U(7))]);
        event("second", &[("ok", Value::B(true)), ("bad", Value::F(f64::NAN))]);
        let got = drain(&buf);
        assert_eq!(
            got,
            "{\"type\":\"event\",\"seq\":0,\"name\":\"quote\\\"break\",\
             \"fields\":{\"msg\":\"a\\\\b\\nc\",\"n\":7}}\n\
             {\"type\":\"event\",\"seq\":1,\"name\":\"second\",\
             \"fields\":{\"ok\":true,\"bad\":null}}\n"
        );
        disable();
    }

    #[test]
    fn metrics_snapshot_skips_wall_units() {
        let _g = sink_guard();
        crate::reset();
        let reg = crate::MetricsRegistry::new();
        reg.counter("z.count", Unit::Count).add(4);
        static EDGES: &[u64] = &[10];
        reg.histogram("z.wall_us", Unit::Micros, EDGES).observe(3);
        let buf = install_buffer();
        emit_metrics(&reg);
        let got = drain(&buf);
        assert!(got.contains("\"name\":\"z.count\""));
        assert!(!got.contains("z.wall_us"), "wall-unit metrics must not reach the stream: {got}");
        disable();
    }

    #[test]
    fn disabled_sink_is_a_noop() {
        let _g = sink_guard();
        disable();
        event("nobody.listening", &[]);
        assert!(!enabled());
    }
}
