//! Human-readable rendering of a metrics snapshot.

use crate::metrics::{MetricSnapshot, MetricValue};

/// Render a snapshot (from [`crate::MetricsRegistry::snapshot`]) as an
/// aligned text table with `metric | kind | value | unit` columns. Wall-time
/// metrics are included here — unlike the JSONL stream, the rendered table
/// is for eyes, not for byte-wise comparison.
pub fn render_metrics(snapshot: &[MetricSnapshot]) -> String {
    let header = ["metric", "kind", "value", "unit"];
    let rows: Vec<[String; 4]> = snapshot
        .iter()
        .map(|m| {
            let (kind, value) = match &m.value {
                MetricValue::Counter(v) => ("counter", v.to_string()),
                MetricValue::Gauge(v) => ("gauge", format!("{v}")),
                MetricValue::Histogram { count, sum, .. } => {
                    ("histogram", format!("n={count} sum={sum}"))
                }
            };
            [m.name.to_string(), kind.to_string(), value, m.unit.as_str().to_string()]
        })
        .collect();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(cell);
            line.push_str(&" ".repeat(w - cell.len()));
        }
        line.trim_end().to_string()
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let mut out = fmt_row(&head);
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    for row in &rows {
        out.push('\n');
        out.push_str(&fmt_row(row.as_slice()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRegistry, Unit};

    #[test]
    fn renders_all_metric_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("r.calls", Unit::Count).add(12);
        reg.gauge("r.depth", Unit::Count).set(3.0);
        static EDGES: &[u64] = &[10];
        reg.histogram("r.lat_us", Unit::Micros, EDGES).observe(7);
        let out = render_metrics(&reg.snapshot());
        assert!(out.starts_with("metric"));
        assert!(out.contains("r.calls"), "{out}");
        assert!(out.contains("counter"));
        assert!(out.contains("n=1 sum=7"));
        assert!(out.contains("us"));
    }
}
