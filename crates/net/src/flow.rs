//! Flow identification and assembly: group packets into bidirectional
//! five-tuple flows and compute per-flow statistics.

use std::collections::HashMap;
use std::net::IpAddr;

use crate::capture::TracePacket;
use crate::packet::{Packet, Transport};
use crate::wire::ipv4::Protocol;
use crate::wire::tcp::Flags;

/// A directed five-tuple identifying one direction of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source IP.
    pub src_ip: IpAddr,
    /// Destination IP.
    pub dst_ip: IpAddr,
    /// Source port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination port (0 for port-less protocols).
    pub dst_port: u16,
    /// Transport protocol number.
    pub protocol: u8,
}

impl FlowKey {
    /// Extract the directed key from a parsed packet.
    pub fn from_packet(packet: &Packet) -> FlowKey {
        FlowKey {
            src_ip: packet.ip.src(),
            dst_ip: packet.ip.dst(),
            src_port: packet.transport.src_port().unwrap_or(0),
            dst_port: packet.transport.dst_port().unwrap_or(0),
            protocol: packet
                .transport
                .protocol()
                .map(u8::from)
                .unwrap_or_else(|| u8::from(packet.ip.protocol())),
        }
    }

    /// The same tuple with endpoints swapped.
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// A direction-independent canonical form: the lexicographically smaller
    /// of `self` and `self.reversed()`. Both directions of a conversation
    /// canonicalize to the same key.
    pub fn canonical(&self) -> FlowKey {
        let rev = self.reversed();
        if *self <= rev {
            *self
        } else {
            rev
        }
    }

    /// True when `self` and `other` are the two directions of one flow.
    pub fn same_flow(&self, other: &FlowKey) -> bool {
        self.canonical() == other.canonical()
    }
}

/// Direction of a packet within a bidirectional flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Matches the initiator→responder orientation.
    Forward,
    /// Matches the responder→initiator orientation.
    Backward,
}

/// A packet index plus direction within a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowPacket {
    /// Index into the originating trace.
    pub index: usize,
    /// Microsecond timestamp copied from the trace.
    pub ts_us: u64,
    /// Direction relative to the flow initiator.
    pub direction: Direction,
    /// Application payload length.
    pub payload_len: usize,
    /// Total frame length.
    pub wire_len: usize,
    /// TCP flags if TCP, else empty.
    pub tcp_flags: Flags,
}

/// Aggregate statistics for a bidirectional flow.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowStats {
    /// Packets initiator→responder.
    pub fwd_packets: usize,
    /// Packets responder→initiator.
    pub bwd_packets: usize,
    /// Payload bytes initiator→responder.
    pub fwd_bytes: usize,
    /// Payload bytes responder→initiator.
    pub bwd_bytes: usize,
    /// First packet timestamp (µs).
    pub first_ts_us: u64,
    /// Last packet timestamp (µs).
    pub last_ts_us: u64,
    /// Count of SYN flags seen.
    pub syn_count: usize,
    /// Count of FIN flags seen.
    pub fin_count: usize,
    /// Count of RST flags seen.
    pub rst_count: usize,
}

impl FlowStats {
    /// Flow duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.last_ts_us.saturating_sub(self.first_ts_us)
    }

    /// Total packets both directions.
    pub fn total_packets(&self) -> usize {
        self.fwd_packets + self.bwd_packets
    }

    /// Total payload bytes both directions.
    pub fn total_bytes(&self) -> usize {
        self.fwd_bytes + self.bwd_bytes
    }

    /// Mean payload bytes per packet (0 when empty).
    pub fn mean_payload(&self) -> f64 {
        let n = self.total_packets();
        if n == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / n as f64
        }
    }
}

/// A bidirectional flow: key (oriented by first packet seen), packets, stats.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Key oriented initiator→responder (first packet's direction).
    pub key: FlowKey,
    /// Member packets in arrival order.
    pub packets: Vec<FlowPacket>,
    /// Aggregate statistics.
    pub stats: FlowStats,
}

/// Assembles parsed packets into bidirectional flows keyed by canonical
/// five-tuple. The first packet seen for a conversation fixes the forward
/// direction.
#[derive(Debug, Default)]
pub struct FlowTable {
    flows: Vec<Flow>,
    index: HashMap<FlowKey, usize>,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// Add a packet (with its trace index and timestamp).
    pub fn push(&mut self, index: usize, ts_us: u64, packet: &Packet) {
        let key = FlowKey::from_packet(packet);
        let canon = key.canonical();
        let flow_idx = *self.index.entry(canon).or_insert_with(|| {
            self.flows.push(Flow { key, packets: Vec::new(), stats: FlowStats::default() });
            self.flows.len() - 1
        });
        let flow = &mut self.flows[flow_idx];
        let direction = if key == flow.key { Direction::Forward } else { Direction::Backward };
        let payload_len = packet.transport.payload().len();
        let tcp_flags = match &packet.transport {
            Transport::Tcp { repr, .. } => repr.flags,
            _ => Flags(0),
        };
        if flow.packets.is_empty() {
            flow.stats.first_ts_us = ts_us;
        }
        flow.stats.last_ts_us = ts_us.max(flow.stats.last_ts_us);
        match direction {
            Direction::Forward => {
                flow.stats.fwd_packets += 1;
                flow.stats.fwd_bytes += payload_len;
            }
            Direction::Backward => {
                flow.stats.bwd_packets += 1;
                flow.stats.bwd_bytes += payload_len;
            }
        }
        if tcp_flags.contains(Flags::SYN) {
            flow.stats.syn_count += 1;
        }
        if tcp_flags.contains(Flags::FIN) {
            flow.stats.fin_count += 1;
        }
        if tcp_flags.contains(Flags::RST) {
            flow.stats.rst_count += 1;
        }
        flow.packets.push(FlowPacket {
            index,
            ts_us,
            direction,
            payload_len,
            wire_len: packet.wire_len(),
            tcp_flags,
        });
    }

    /// Assemble a whole trace (packets that fail to parse are skipped).
    pub fn from_trace<'a>(packets: impl Iterator<Item = &'a TracePacket>) -> FlowTable {
        let mut table = FlowTable::new();
        for (i, tp) in packets.enumerate() {
            if let Ok(parsed) = Packet::parse(&tp.frame) {
                table.push(i, tp.ts_us, &parsed);
            }
        }
        table
    }

    /// The assembled flows in first-seen order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True when no flows have been assembled.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Look up the flow containing `key` (either direction).
    pub fn get(&self, key: &FlowKey) -> Option<&Flow> {
        self.index.get(&key.canonical()).map(|&i| &self.flows[i])
    }
}

/// Well-known destination ports used as a weak protocol prior (and as
/// ground-truth echoes in the token vocabulary).
pub fn service_name(port: u16, protocol: Protocol) -> Option<&'static str> {
    match (port, protocol) {
        (53, _) => Some("dns"),
        (80, Protocol::Tcp) => Some("http"),
        (443, Protocol::Tcp) => Some("https"),
        (443, Protocol::Udp) => Some("quic"),
        (25, Protocol::Tcp) => Some("smtp"),
        (143, Protocol::Tcp) => Some("imap"),
        (993, Protocol::Tcp) => Some("imaps"),
        (110, Protocol::Tcp) => Some("pop3"),
        (123, Protocol::Udp) => Some("ntp"),
        (67 | 68, Protocol::Udp) => Some("dhcp"),
        (22, Protocol::Tcp) => Some("ssh"),
        (1883, Protocol::Tcp) => Some("mqtt"),
        (554, Protocol::Tcp) => Some("rtsp"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::wire::tcp;
    use std::net::Ipv4Addr;

    fn udp_packet(sp: u16, dp: u16, payload: usize) -> Packet {
        Packet::udp_v4(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            sp,
            dp,
            64,
            vec![0; payload],
        )
    }

    fn reply_packet(sp: u16, dp: u16, payload: usize) -> Packet {
        Packet::udp_v4(
            MacAddr::from_index(2),
            MacAddr::from_index(1),
            Ipv4Addr::new(10, 0, 0, 2),
            Ipv4Addr::new(10, 0, 0, 1),
            sp,
            dp,
            64,
            vec![0; payload],
        )
    }

    #[test]
    fn canonical_key_is_direction_independent() {
        let k = FlowKey::from_packet(&udp_packet(5000, 53, 10));
        let r = FlowKey::from_packet(&reply_packet(53, 5000, 20));
        assert_ne!(k, r);
        assert_eq!(k.canonical(), r.canonical());
        assert!(k.same_flow(&r));
        assert_eq!(k.reversed(), r);
        assert_eq!(k.reversed().reversed(), k);
    }

    #[test]
    fn bidirectional_assembly_and_stats() {
        let mut table = FlowTable::new();
        table.push(0, 1_000, &udp_packet(5000, 53, 30));
        table.push(1, 2_000, &reply_packet(53, 5000, 120));
        table.push(2, 9_000, &udp_packet(6000, 53, 31)); // second flow
        assert_eq!(table.len(), 2);
        let flow = &table.flows()[0];
        assert_eq!(flow.stats.fwd_packets, 1);
        assert_eq!(flow.stats.bwd_packets, 1);
        assert_eq!(flow.stats.fwd_bytes, 30);
        assert_eq!(flow.stats.bwd_bytes, 120);
        assert_eq!(flow.stats.duration_us(), 1_000);
        assert_eq!(flow.packets[0].direction, Direction::Forward);
        assert_eq!(flow.packets[1].direction, Direction::Backward);
        assert!((flow.stats.mean_payload() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn tcp_flag_counters() {
        let mk = |flags: Flags| {
            Packet::tcp_v4(
                MacAddr::from_index(1),
                MacAddr::from_index(2),
                Ipv4Addr::new(1, 1, 1, 1),
                Ipv4Addr::new(2, 2, 2, 2),
                tcp::Repr { src_port: 9999, dst_port: 80, seq: 0, ack: 0, flags, window: 1000 },
                64,
                vec![],
            )
        };
        let mut table = FlowTable::new();
        table.push(0, 0, &mk(Flags::SYN));
        table.push(1, 10, &mk(Flags::PSH_ACK));
        table.push(2, 20, &mk(Flags::FIN_ACK));
        let flow = &table.flows()[0];
        assert_eq!(flow.stats.syn_count, 1);
        assert_eq!(flow.stats.fin_count, 1);
        assert_eq!(flow.stats.rst_count, 0);
        assert_eq!(flow.stats.total_packets(), 3);
    }

    #[test]
    fn lookup_by_either_direction() {
        let mut table = FlowTable::new();
        let p = udp_packet(1234, 53, 1);
        table.push(0, 0, &p);
        let k = FlowKey::from_packet(&p);
        assert!(table.get(&k).is_some());
        assert!(table.get(&k.reversed()).is_some());
        assert!(table.get(&FlowKey { src_port: 9, ..k }).is_none());
    }

    #[test]
    fn service_names() {
        assert_eq!(service_name(53, Protocol::Udp), Some("dns"));
        assert_eq!(service_name(443, Protocol::Tcp), Some("https"));
        assert_eq!(service_name(443, Protocol::Udp), Some("quic"));
        assert_eq!(service_name(4444, Protocol::Tcp), None);
    }
}
