//! Classic libpcap file format (the `0xa1b2c3d4` magic, microsecond
//! resolution, LINKTYPE_ETHERNET) reading and writing, so generated traces
//! interoperate with tcpdump/Wireshark.

use std::io::{self, Read, Write};

use crate::capture::{Trace, TracePacket};
use crate::error::ParseError;

/// Classic pcap magic (big-endian byte order as written here).
pub const MAGIC: u32 = 0xa1b2_c3d4;

/// LINKTYPE_ETHERNET.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Write `trace` to `out` in classic pcap format.
pub fn write<W: Write>(out: &mut W, trace: &Trace) -> io::Result<()> {
    out.write_all(&MAGIC.to_be_bytes())?;
    out.write_all(&2u16.to_be_bytes())?; // version major
    out.write_all(&4u16.to_be_bytes())?; // version minor
    out.write_all(&0u32.to_be_bytes())?; // thiszone
    out.write_all(&0u32.to_be_bytes())?; // sigfigs
    out.write_all(&65535u32.to_be_bytes())?; // snaplen
    out.write_all(&LINKTYPE_ETHERNET.to_be_bytes())?;
    for p in trace.packets() {
        let secs = (p.ts_us / 1_000_000) as u32;
        let usecs = (p.ts_us % 1_000_000) as u32;
        out.write_all(&secs.to_be_bytes())?;
        out.write_all(&usecs.to_be_bytes())?;
        out.write_all(&(p.frame.len() as u32).to_be_bytes())?;
        out.write_all(&(p.frame.len() as u32).to_be_bytes())?;
        out.write_all(&p.frame)?;
    }
    Ok(())
}

/// Read a classic pcap file (either byte order) from `input`.
pub fn read<R: Read>(input: &mut R) -> Result<Trace, ReadError> {
    let mut header = [0u8; 24];
    input.read_exact(&mut header).map_err(ReadError::Io)?;
    let magic = u32::from_be_bytes([header[0], header[1], header[2], header[3]]);
    let big_endian = match magic {
        MAGIC => true,
        m if m.swap_bytes() == MAGIC => false,
        other => {
            return Err(ReadError::Parse(ParseError::BadValue {
                what: "pcap magic",
                value: other as u64,
            }))
        }
    };
    let u32_at = |b: &[u8], at: usize| {
        let arr: [u8; 4] = b[at..at + 4].try_into().expect("in-bounds by construction");
        if big_endian {
            u32::from_be_bytes(arr)
        } else {
            u32::from_le_bytes(arr)
        }
    };
    let linktype = u32_at(&header, 20);
    if linktype != LINKTYPE_ETHERNET {
        return Err(ReadError::Parse(ParseError::BadValue {
            what: "pcap linktype",
            value: linktype as u64,
        }));
    }
    let mut packets = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match input.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(ReadError::Io(e)),
        }
        let secs = u32_at(&rec, 0) as u64;
        let usecs = u32_at(&rec, 4) as u64;
        let caplen = u32_at(&rec, 8) as usize;
        if caplen > 10 * 1024 * 1024 {
            return Err(ReadError::Parse(ParseError::BadLength { what: "pcap caplen" }));
        }
        let mut frame = vec![0u8; caplen];
        input.read_exact(&mut frame).map_err(ReadError::Io)?;
        packets.push(TracePacket { ts_us: secs * 1_000_000 + usecs, frame });
    }
    Ok(Trace::from_packets(packets))
}

/// Error from [`read`].
#[derive(Debug)]
pub enum ReadError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Structural problem with the file.
    Parse(ParseError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "pcap io error: {e}"),
            ReadError::Parse(e) => write!(f, "pcap parse error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use crate::packet::Packet;
    use std::net::Ipv4Addr;

    fn sample_trace() -> Trace {
        let mk = |ts: u64, port: u16| {
            TracePacket::from_packet(
                ts,
                &Packet::udp_v4(
                    MacAddr::from_index(1),
                    MacAddr::from_index(2),
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    4000,
                    port,
                    64,
                    vec![7; 11],
                ),
            )
        };
        Trace::from_packets(vec![mk(1_500_000, 53), mk(2_250_001, 123)])
    }

    #[test]
    fn write_read_round_trip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write(&mut buf, &trace).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in back.packets().iter().zip(trace.packets()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn little_endian_files_accepted() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write(&mut buf, &trace).unwrap();
        // Byte-swap the header fields to simulate a little-endian writer.
        let mut le = Vec::new();
        le.extend_from_slice(&MAGIC.swap_bytes().to_be_bytes());
        for i in (4..24).step_by(4) {
            let v = u32::from_be_bytes(buf[i..i + 4].try_into().unwrap());
            le.extend_from_slice(&v.to_le_bytes());
        }
        // Fix the 16-bit version fields (they were written as two u16s).
        le[4..6].copy_from_slice(&2u16.to_le_bytes());
        le[6..8].copy_from_slice(&4u16.to_le_bytes());
        let mut at = 24;
        while at < buf.len() {
            for i in (at..at + 16).step_by(4) {
                let v = u32::from_be_bytes(buf[i..i + 4].try_into().unwrap());
                le.extend_from_slice(&v.to_le_bytes());
            }
            let caplen = u32::from_be_bytes(buf[at + 8..at + 12].try_into().unwrap()) as usize;
            le.extend_from_slice(&buf[at + 16..at + 16 + caplen]);
            at += 16 + caplen;
        }
        let back = read(&mut le.as_slice()).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.packets()[0].ts_us, 1_500_000);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = vec![0u8; 24];
        assert!(matches!(read(&mut buf.as_slice()), Err(ReadError::Parse(_))));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write(&mut buf, &trace).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read(&mut buf.as_slice()), Err(ReadError::Io(_))));
    }

    #[test]
    fn timestamps_preserved_to_microsecond() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write(&mut buf, &trace).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        assert_eq!(back.packets()[1].ts_us, 2_250_001);
    }
}
