//! Error types shared across the wire-format parsers and emitters.
//!
//! Parsing network input must never panic: every malformed input maps to a
//! [`ParseError`] variant that says what was wrong and (where useful) where.

use std::fmt;

/// Error returned when a byte buffer cannot be parsed as a given protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the protocol's minimum header.
    Truncated {
        /// Protocol whose header was truncated.
        what: &'static str,
        /// Bytes required (minimum) to make progress.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A length field points outside the buffer or contradicts another field.
    BadLength {
        /// Protocol or field with the inconsistent length.
        what: &'static str,
    },
    /// A version/type/magic field has a value this implementation rejects.
    BadValue {
        /// Field with the unsupported value.
        what: &'static str,
        /// The offending value, widened for display.
        value: u64,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol whose checksum failed.
        what: &'static str,
    },
    /// DNS name compression loop or pointer past the end of the message.
    BadName,
    /// A text protocol line violated its grammar.
    BadSyntax {
        /// Description of the violated rule.
        what: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { what, needed, got } => {
                write!(f, "{what}: truncated (need {needed} bytes, got {got})")
            }
            ParseError::BadLength { what } => write!(f, "{what}: inconsistent length field"),
            ParseError::BadValue { what, value } => {
                write!(f, "{what}: unsupported value {value:#x}")
            }
            ParseError::BadChecksum { what } => write!(f, "{what}: checksum mismatch"),
            ParseError::BadName => write!(f, "dns: malformed or looping compressed name"),
            ParseError::BadSyntax { what } => write!(f, "syntax error: {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Error returned when an owned representation cannot be serialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The destination buffer is too small for the encoded form.
    BufferTooSmall {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A field value cannot be represented on the wire (e.g. name too long).
    FieldTooLarge {
        /// Field that overflowed its wire encoding.
        what: &'static str,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::BufferTooSmall { needed, got } => {
                write!(f, "buffer too small (need {needed} bytes, got {got})")
            }
            BuildError::FieldTooLarge { what } => write!(f, "{what}: value too large for wire"),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::Truncated { what: "ipv4", needed: 20, got: 3 };
        assert_eq!(e.to_string(), "ipv4: truncated (need 20 bytes, got 3)");
        let e = ParseError::BadValue { what: "ipv4 version", value: 6 };
        assert!(e.to_string().contains("0x6"));
        let e = BuildError::BufferTooSmall { needed: 64, got: 8 };
        assert!(e.to_string().contains("64"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<ParseError>();
        assert_err::<BuildError>();
    }
}
