//! Timestamped packet traces, as produced by a capture point: merging,
//! filtering, and time-windowing.

use crate::packet::Packet;

/// One captured frame with a microsecond timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracePacket {
    /// Capture timestamp in microseconds since an arbitrary epoch.
    pub ts_us: u64,
    /// Raw frame bytes (Ethernet onward).
    pub frame: Vec<u8>,
}

impl TracePacket {
    /// Build from an owned packet at the given timestamp.
    pub fn from_packet(ts_us: u64, packet: &Packet) -> TracePacket {
        TracePacket { ts_us, frame: packet.emit() }
    }

    /// Parse the frame back into a layered packet.
    pub fn parse(&self) -> Result<Packet, crate::error::ParseError> {
        Packet::parse(&self.frame)
    }
}

/// An ordered sequence of captured packets.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    packets: Vec<TracePacket>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Build from a vector, sorting by timestamp (stable, so ties keep
    /// insertion order).
    pub fn from_packets(mut packets: Vec<TracePacket>) -> Trace {
        packets.sort_by_key(|p| p.ts_us);
        Trace { packets }
    }

    /// Append a packet; callers must keep timestamps non-decreasing or call
    /// [`Trace::sort`] afterwards.
    pub fn push(&mut self, packet: TracePacket) {
        self.packets.push(packet);
    }

    /// Restore timestamp order after arbitrary pushes.
    pub fn sort(&mut self) {
        self.packets.sort_by_key(|p| p.ts_us);
    }

    /// The packets in timestamp order.
    pub fn packets(&self) -> &[TracePacket] {
        &self.packets
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total bytes across all frames.
    pub fn total_bytes(&self) -> usize {
        self.packets.iter().map(|p| p.frame.len()).sum()
    }

    /// Merge two traces into one, interleaving by timestamp. This models a
    /// capture point observing several endpoints at once (paper §4.1.3).
    pub fn merge(traces: Vec<Trace>) -> Trace {
        let mut all: Vec<TracePacket> =
            traces.into_iter().flat_map(|t| t.packets.into_iter()).collect();
        all.sort_by_key(|p| p.ts_us);
        Trace { packets: all }
    }

    /// Keep only packets for which `pred` returns true on the parsed form
    /// (unparseable packets are dropped).
    pub fn filter(&self, mut pred: impl FnMut(&Packet) -> bool) -> Trace {
        Trace {
            packets: self
                .packets
                .iter()
                .filter(|tp| tp.parse().map(|p| pred(&p)).unwrap_or(false))
                .cloned()
                .collect(),
        }
    }

    /// Packets with `start_us <= ts < end_us`.
    pub fn window(&self, start_us: u64, end_us: u64) -> Trace {
        Trace {
            packets: self
                .packets
                .iter()
                .filter(|p| p.ts_us >= start_us && p.ts_us < end_us)
                .cloned()
                .collect(),
        }
    }

    /// Duration between first and last packet in microseconds.
    pub fn duration_us(&self) -> u64 {
        match (self.packets.first(), self.packets.last()) {
            (Some(a), Some(b)) => b.ts_us - a.ts_us,
            _ => 0,
        }
    }
}

impl FromIterator<TracePacket> for Trace {
    fn from_iter<I: IntoIterator<Item = TracePacket>>(iter: I) -> Self {
        Trace::from_packets(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::MacAddr;
    use std::net::Ipv4Addr;

    fn pkt(ts: u64, dst_port: u16) -> TracePacket {
        let p = Packet::udp_v4(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            dst_port,
            64,
            vec![1, 2, 3],
        );
        TracePacket::from_packet(ts, &p)
    }

    #[test]
    fn from_packets_sorts_by_time() {
        let t = Trace::from_packets(vec![pkt(30, 1), pkt(10, 2), pkt(20, 3)]);
        let ts: Vec<u64> = t.packets().iter().map(|p| p.ts_us).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn merge_interleaves() {
        let a = Trace::from_packets(vec![pkt(10, 1), pkt(30, 1)]);
        let b = Trace::from_packets(vec![pkt(20, 2), pkt(40, 2)]);
        let merged = Trace::merge(vec![a, b]);
        let ports: Vec<u16> = merged
            .packets()
            .iter()
            .map(|p| p.parse().unwrap().transport.dst_port().unwrap())
            .collect();
        assert_eq!(ports, vec![1, 2, 1, 2]);
        assert_eq!(merged.duration_us(), 30);
    }

    #[test]
    fn filter_by_parsed_fields() {
        let t = Trace::from_packets(vec![pkt(1, 53), pkt(2, 80), pkt(3, 53)]);
        let dns = t.filter(|p| p.transport.dst_port() == Some(53));
        assert_eq!(dns.len(), 2);
    }

    #[test]
    fn window_is_half_open() {
        let t = Trace::from_packets(vec![pkt(10, 1), pkt(20, 1), pkt(30, 1)]);
        let w = t.window(10, 30);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn unparseable_packets_dropped_by_filter() {
        let mut t = Trace::new();
        t.push(pkt(1, 53));
        t.push(TracePacket { ts_us: 2, frame: vec![0xde, 0xad] });
        let kept = t.filter(|_| true);
        assert_eq!(kept.len(), 1);
    }
}
