//! Owned, layered packet representation tying the wire formats together:
//! Ethernet → IPv4/IPv6 → TCP/UDP/ICMP/other → opaque application payload.
//!
//! `Packet::emit` produces a complete valid frame (lengths and checksums
//! computed); `Packet::parse` inverts it, validating as it descends.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

use crate::addr::MacAddr;
use crate::checksum;
use crate::error::ParseError;
use crate::wire::ethernet::EtherType;
use crate::wire::ipv4::Protocol;
use crate::wire::{ethernet, icmp, ipv4, ipv6, tcp, udp, Writer};

// Re-export for convenience at the packet level.
pub use crate::wire::ethernet::EtherType as LinkType;

/// Network-layer header: IPv4 or IPv6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpRepr {
    /// An IPv4 header.
    V4(ipv4::Repr),
    /// An IPv6 header.
    V6(ipv6::Repr),
}

impl IpRepr {
    /// Source IP address.
    pub fn src(&self) -> IpAddr {
        match self {
            IpRepr::V4(r) => IpAddr::V4(r.src),
            IpRepr::V6(r) => IpAddr::V6(r.src),
        }
    }

    /// Destination IP address.
    pub fn dst(&self) -> IpAddr {
        match self {
            IpRepr::V4(r) => IpAddr::V4(r.dst),
            IpRepr::V6(r) => IpAddr::V6(r.dst),
        }
    }

    /// Transport protocol / next header.
    pub fn protocol(&self) -> Protocol {
        match self {
            IpRepr::V4(r) => r.protocol,
            IpRepr::V6(r) => r.next_header,
        }
    }

    /// TTL or hop limit.
    pub fn ttl(&self) -> u8 {
        match self {
            IpRepr::V4(r) => r.ttl,
            IpRepr::V6(r) => r.hop_limit,
        }
    }
}

/// Transport layer content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// A TCP segment with application payload.
    Tcp {
        /// Header fields.
        repr: tcp::Repr,
        /// Application bytes.
        payload: Vec<u8>,
    },
    /// A UDP datagram with application payload.
    Udp {
        /// Header fields.
        repr: udp::Repr,
        /// Application bytes.
        payload: Vec<u8>,
    },
    /// An ICMP message.
    Icmp {
        /// Header fields.
        repr: icmp::Repr,
        /// Message data.
        payload: Vec<u8>,
    },
    /// An unparsed transport protocol.
    Other {
        /// Raw bytes after the IP header.
        payload: Vec<u8>,
    },
}

impl Transport {
    /// Encoded length of this transport segment.
    pub fn wire_len(&self) -> usize {
        match self {
            Transport::Tcp { payload, .. } => tcp::HEADER_LEN + payload.len(),
            Transport::Udp { payload, .. } => udp::HEADER_LEN + payload.len(),
            Transport::Icmp { payload, .. } => icmp::HEADER_LEN + payload.len(),
            Transport::Other { payload } => payload.len(),
        }
    }

    /// The IP protocol number implied by the variant (`None` for `Other`).
    pub fn protocol(&self) -> Option<Protocol> {
        match self {
            Transport::Tcp { .. } => Some(Protocol::Tcp),
            Transport::Udp { .. } => Some(Protocol::Udp),
            Transport::Icmp { .. } => Some(Protocol::Icmp),
            Transport::Other { .. } => None,
        }
    }

    /// The application payload bytes.
    pub fn payload(&self) -> &[u8] {
        match self {
            Transport::Tcp { payload, .. }
            | Transport::Udp { payload, .. }
            | Transport::Icmp { payload, .. }
            | Transport::Other { payload } => payload,
        }
    }

    /// Source port, when the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            Transport::Tcp { repr, .. } => Some(repr.src_port),
            Transport::Udp { repr, .. } => Some(repr.src_port),
            _ => None,
        }
    }

    /// Destination port, when the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            Transport::Tcp { repr, .. } => Some(repr.dst_port),
            Transport::Udp { repr, .. } => Some(repr.dst_port),
            _ => None,
        }
    }
}

/// A complete owned packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Link-layer header.
    pub eth: ethernet::Repr,
    /// Network-layer header.
    pub ip: IpRepr,
    /// Transport layer and payload.
    pub transport: Transport,
}

impl Packet {
    /// Build a UDP packet over IPv4 with sensible defaults.
    #[allow(clippy::too_many_arguments)]
    pub fn udp_v4(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        ttl: u8,
        payload: Vec<u8>,
    ) -> Packet {
        let transport = Transport::Udp { repr: udp::Repr { src_port, dst_port }, payload };
        Packet {
            eth: ethernet::Repr { src: src_mac, dst: dst_mac, ethertype: EtherType::Ipv4 },
            ip: IpRepr::V4(ipv4::Repr {
                src,
                dst,
                protocol: Protocol::Udp,
                payload_len: transport.wire_len(),
                ttl,
                ident: 0,
                dont_frag: true,
                dscp_ecn: 0,
            }),
            transport,
        }
    }

    /// Build a TCP packet over IPv4 with sensible defaults.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_v4(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        repr: tcp::Repr,
        ttl: u8,
        payload: Vec<u8>,
    ) -> Packet {
        let transport = Transport::Tcp { repr, payload };
        Packet {
            eth: ethernet::Repr { src: src_mac, dst: dst_mac, ethertype: EtherType::Ipv4 },
            ip: IpRepr::V4(ipv4::Repr {
                src,
                dst,
                protocol: Protocol::Tcp,
                payload_len: transport.wire_len(),
                ttl,
                ident: 0,
                dont_frag: true,
                dscp_ecn: 0,
            }),
            transport,
        }
    }

    /// Total frame length when emitted.
    pub fn wire_len(&self) -> usize {
        let ip_len = match self.ip {
            IpRepr::V4(_) => ipv4::HEADER_LEN,
            IpRepr::V6(_) => ipv6::HEADER_LEN,
        };
        ethernet::HEADER_LEN + ip_len + self.transport.wire_len()
    }

    /// Encode the full frame, recomputing lengths and checksums.
    pub fn emit(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.wire_len());
        self.eth.emit(&mut w);
        match self.ip {
            IpRepr::V4(mut r) => {
                r.payload_len = self.transport.wire_len();
                if let Some(p) = self.transport.protocol() {
                    r.protocol = p;
                }
                r.emit(&mut w);
                self.emit_transport_v4(&mut w, r.src, r.dst);
            }
            IpRepr::V6(mut r) => {
                r.payload_len = self.transport.wire_len();
                if let Some(p) = self.transport.protocol() {
                    r.next_header = p;
                }
                r.emit(&mut w);
                self.emit_transport_v6(&mut w, r.src, r.dst);
            }
        }
        w.into_vec()
    }

    fn emit_transport_v4(&self, w: &mut Writer, src: Ipv4Addr, dst: Ipv4Addr) {
        match &self.transport {
            Transport::Tcp { repr, payload } => repr.emit(w, src, dst, payload),
            Transport::Udp { repr, payload } => repr.emit(w, src, dst, payload),
            Transport::Icmp { repr, payload } => repr.emit(w, payload),
            Transport::Other { payload } => w.bytes(payload),
        }
    }

    fn emit_transport_v6(&self, w: &mut Writer, src: Ipv6Addr, dst: Ipv6Addr) {
        match &self.transport {
            // Emit with a zeroed v4-style checksum first, then patch using
            // the v6 pseudo-header over the emitted bytes.
            Transport::Tcp { repr, payload } => {
                let start = w.len();
                repr.emit(w, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, payload);
                w.patch_u16(start + 16, 0).expect("segment just written");
                let sum = checksum::pseudo_header_checksum_v6(src, dst, 6, &w.as_slice()[start..]);
                w.patch_u16(start + 16, sum).expect("segment just written");
            }
            Transport::Udp { repr, payload } => {
                let start = w.len();
                repr.emit(w, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED, payload);
                w.patch_u16(start + 6, 0).expect("datagram just written");
                let sum = checksum::pseudo_header_checksum_v6(src, dst, 17, &w.as_slice()[start..]);
                w.patch_u16(start + 6, sum).expect("datagram just written");
            }
            Transport::Icmp { repr, payload } => repr.emit(w, payload),
            Transport::Other { payload } => w.bytes(payload),
        }
    }

    /// Parse a full frame, validating each layer.
    pub fn parse(bytes: &[u8]) -> Result<Packet, ParseError> {
        let frame = ethernet::Frame::new_checked(bytes)?;
        let eth = ethernet::Repr::parse(&frame);
        let (ip, payload): (IpRepr, &[u8]) = match eth.ethertype {
            EtherType::Ipv4 => {
                let p = ipv4::Packet::new_checked(frame.payload())?;
                let repr = ipv4::Repr::parse(&p)?;
                // Borrow payload from the original buffer to outlive `p`.
                let start = ethernet::HEADER_LEN + p.header_len();
                let end = ethernet::HEADER_LEN + p.total_len();
                (IpRepr::V4(repr), &bytes[start..end])
            }
            EtherType::Ipv6 => {
                let p = ipv6::Packet::new_checked(frame.payload())?;
                let repr = ipv6::Repr::parse(&p);
                let start = ethernet::HEADER_LEN + ipv6::HEADER_LEN;
                let end = start + p.payload_len();
                (IpRepr::V6(repr), &bytes[start..end])
            }
            other => {
                return Err(ParseError::BadValue {
                    what: "ethertype",
                    value: u16::from(other) as u64,
                })
            }
        };
        let transport = match ip.protocol() {
            Protocol::Tcp => {
                let seg = tcp::Segment::new_checked(payload)?;
                Transport::Tcp { repr: tcp::Repr::parse(&seg), payload: seg.payload().to_vec() }
            }
            Protocol::Udp => {
                let d = udp::Datagram::new_checked(payload)?;
                Transport::Udp { repr: udp::Repr::parse(&d), payload: d.payload().to_vec() }
            }
            Protocol::Icmp => {
                let m = icmp::Message::new_checked(payload)?;
                Transport::Icmp { repr: icmp::Repr::parse(&m)?, payload: m.payload().to_vec() }
            }
            _ => Transport::Other { payload: payload.to_vec() },
        };
        Ok(Packet { eth, ip, transport })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::tcp::Flags;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::from_index(1), MacAddr::from_index(2))
    }

    #[test]
    fn udp_v4_round_trip() {
        let (s, d) = macs();
        let p = Packet::udp_v4(
            s,
            d,
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            5000,
            53,
            64,
            b"dns-query".to_vec(),
        );
        let bytes = p.emit();
        assert_eq!(bytes.len(), p.wire_len());
        let parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.transport.payload(), b"dns-query");
        assert_eq!(parsed.transport.dst_port(), Some(53));
    }

    #[test]
    fn tcp_v4_round_trip() {
        let (s, d) = macs();
        let repr = tcp::Repr {
            src_port: 49152,
            dst_port: 443,
            seq: 1,
            ack: 0,
            flags: Flags::SYN,
            window: 64240,
        };
        let p = Packet::tcp_v4(
            s,
            d,
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            repr,
            63,
            vec![],
        );
        let parsed = Packet::parse(&p.emit()).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.ip.ttl(), 63);
    }

    #[test]
    fn tcp_v6_round_trip() {
        let (s, d) = macs();
        let transport = Transport::Tcp {
            repr: tcp::Repr {
                src_port: 1000,
                dst_port: 80,
                seq: 9,
                ack: 9,
                flags: Flags::PSH_ACK,
                window: 1024,
            },
            payload: b"GET /".to_vec(),
        };
        let p = Packet {
            eth: ethernet::Repr { src: s, dst: d, ethertype: EtherType::Ipv6 },
            ip: IpRepr::V6(ipv6::Repr {
                src: "fdaa::1".parse().unwrap(),
                dst: "fdaa::2".parse().unwrap(),
                next_header: Protocol::Tcp,
                payload_len: transport.wire_len(),
                hop_limit: 64,
                flow_label: 7,
            }),
            transport,
        };
        let parsed = Packet::parse(&p.emit()).unwrap();
        assert_eq!(parsed, p);
        assert_eq!(parsed.ip.src(), "fdaa::1".parse::<IpAddr>().unwrap());
    }

    #[test]
    fn icmp_round_trip() {
        let (s, d) = macs();
        let transport = Transport::Icmp {
            repr: icmp::Repr { kind: icmp::Kind::EchoRequest, ident: 5, seq_no: 1 },
            payload: vec![0xaa; 16],
        };
        let p = Packet {
            eth: ethernet::Repr { src: s, dst: d, ethertype: EtherType::Ipv4 },
            ip: IpRepr::V4(ipv4::Repr {
                src: Ipv4Addr::new(10, 0, 0, 1),
                dst: Ipv4Addr::new(8, 8, 8, 8),
                protocol: Protocol::Icmp,
                payload_len: transport.wire_len(),
                ttl: 64,
                ident: 77,
                dont_frag: false,
                dscp_ecn: 0,
            }),
            transport,
        };
        let parsed = Packet::parse(&p.emit()).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn corrupt_frames_never_panic() {
        let (s, d) = macs();
        let p = Packet::udp_v4(
            s,
            d,
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(4, 3, 2, 1),
            9,
            9,
            1,
            vec![1, 2, 3],
        );
        let bytes = p.emit();
        // Flip every single byte and make sure parse returns Ok or Err
        // without panicking.
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0xff;
            let _ = Packet::parse(&m);
        }
        // Truncate at every length.
        for i in 0..bytes.len() {
            let _ = Packet::parse(&bytes[..i]);
        }
    }

    #[test]
    fn non_ip_ethertype_rejected() {
        let (s, d) = macs();
        let mut w = Writer::new();
        ethernet::Repr { src: s, dst: d, ethertype: EtherType::Arp }.emit(&mut w);
        w.bytes(&[0u8; 28]);
        assert!(matches!(
            Packet::parse(w.as_slice()),
            Err(ParseError::BadValue { what: "ethertype", .. })
        ));
    }
}
