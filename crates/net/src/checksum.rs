//! RFC 1071 Internet checksum, plus the TCP/UDP pseudo-header variants.

use std::net::Ipv4Addr;

/// One's-complement sum over `data`, folded to 16 bits (not yet negated).
fn ones_complement_sum(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Compute the Internet checksum of `data` (e.g. an IPv4 header with its
/// checksum field zeroed).
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(ones_complement_sum(0, data))
}

/// Verify a buffer that *includes* its checksum field: the folded sum must be
/// `0xffff`.
pub fn verify(data: &[u8]) -> bool {
    fold(ones_complement_sum(0, data)) == 0xffff
}

/// Compute the TCP/UDP checksum over the IPv4 pseudo-header plus `segment`
/// (the transport header and payload with its checksum field zeroed).
pub fn pseudo_header_checksum_v4(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    protocol: u8,
    segment: &[u8],
) -> u16 {
    let mut acc = 0u32;
    acc = ones_complement_sum(acc, &src.octets());
    acc = ones_complement_sum(acc, &dst.octets());
    acc += u32::from(protocol);
    acc += segment.len() as u32;
    acc = ones_complement_sum(acc, segment);
    let sum = !fold(acc);
    // Per RFC 768 a transmitted UDP checksum of zero means "no checksum";
    // an all-zero computed value is sent as 0xffff instead.
    if sum == 0 {
        0xffff
    } else {
        sum
    }
}

/// Compute the TCP/UDP checksum over the IPv6 pseudo-header plus `segment`.
pub fn pseudo_header_checksum_v6(
    src: std::net::Ipv6Addr,
    dst: std::net::Ipv6Addr,
    next_header: u8,
    segment: &[u8],
) -> u16 {
    let mut acc = 0u32;
    acc = ones_complement_sum(acc, &src.octets());
    acc = ones_complement_sum(acc, &dst.octets());
    acc += segment.len() as u32;
    acc += u32::from(next_header);
    acc = ones_complement_sum(acc, segment);
    let sum = !fold(acc);
    if sum == 0 {
        0xffff
    } else {
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Worked example from RFC 1071 §3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = fold(ones_complement_sum(0, &data));
        assert_eq!(sum, 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn verify_accepts_correct_checksum() {
        let mut header = vec![
            0x45, 0x00, 0x00, 0x28, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06, 0, 0, 0xc0, 0xa8, 0x00,
            0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let sum = internet_checksum(&header);
        header[10..12].copy_from_slice(&sum.to_be_bytes());
        assert!(verify(&header));
        header[13] ^= 0x40;
        assert!(!verify(&header));
    }

    #[test]
    fn odd_length_padded_with_zero() {
        // Appending a zero byte must not change the checksum.
        let odd = [0x12u8, 0x34, 0x56];
        let even = [0x12u8, 0x34, 0x56, 0x00];
        assert_eq!(internet_checksum(&odd), internet_checksum(&even));
    }

    #[test]
    fn pseudo_header_zero_maps_to_ffff() {
        // Regardless of input, the function never returns 0.
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        for payload_len in 0..16 {
            let seg = vec![0u8; payload_len];
            assert_ne!(pseudo_header_checksum_v4(src, dst, 17, &seg), 0);
        }
    }
}
