//! Link-layer addresses. IP addresses reuse `std::net::{Ipv4Addr, Ipv6Addr}`.

use std::fmt;

/// A 48-bit Ethernet MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Construct from a byte slice; returns `None` unless exactly 6 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<MacAddr> {
        let arr: [u8; 6] = bytes.try_into().ok()?;
        Some(MacAddr(arr))
    }

    /// Raw bytes in network order.
    pub fn as_bytes(&self) -> &[u8; 6] {
        &self.0
    }

    /// True when the least-significant bit of the first octet is set
    /// (multicast, which includes broadcast).
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True when the locally-administered bit is set.
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// A deterministic locally-administered unicast address derived from an
    /// index, handy for synthetic topologies.
    pub fn from_index(index: u64) -> MacAddr {
        let b = index.to_be_bytes();
        // 0x02 => locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let mac = MacAddr([0x02, 0x00, 0x5e, 0x10, 0x00, 0x01]);
        assert_eq!(mac.to_string(), "02:00:5e:10:00:01");
    }

    #[test]
    fn multicast_and_local_bits() {
        assert!(MacAddr::BROADCAST.is_multicast());
        let unicast = MacAddr::from_index(7);
        assert!(!unicast.is_multicast());
        assert!(unicast.is_local());
    }

    #[test]
    fn from_bytes_checks_length() {
        assert!(MacAddr::from_bytes(&[1, 2, 3]).is_none());
        assert_eq!(MacAddr::from_bytes(&[1, 2, 3, 4, 5, 6]), Some(MacAddr([1, 2, 3, 4, 5, 6])));
    }

    #[test]
    fn from_index_is_deterministic_and_distinct() {
        assert_eq!(MacAddr::from_index(1), MacAddr::from_index(1));
        assert_ne!(MacAddr::from_index(1), MacAddr::from_index(2));
    }
}
