//! # nfm-net — packet and protocol substrate
//!
//! Typed, checked wire formats for the protocols the network-foundation-model
//! stack works with, plus flow assembly, capture traces, and pcap file IO.
//!
//! The design follows `smoltcp`'s idiom: zero-copy `Packet<T: AsRef<[u8]>>`
//! views with checked constructors for reading, and owned `Repr` structs with
//! `emit` for writing. Parsing never panics on malformed input — every error
//! is a [`error::ParseError`].
//!
//! ## Quick example
//!
//! ```
//! use nfm_net::addr::MacAddr;
//! use nfm_net::packet::Packet;
//! use std::net::Ipv4Addr;
//!
//! let packet = Packet::udp_v4(
//!     MacAddr::from_index(1),
//!     MacAddr::from_index(2),
//!     Ipv4Addr::new(10, 0, 0, 1),
//!     Ipv4Addr::new(10, 0, 0, 53),
//!     40000,
//!     53,
//!     64,
//!     b"payload".to_vec(),
//! );
//! let bytes = packet.emit();
//! let parsed = Packet::parse(&bytes).unwrap();
//! assert_eq!(parsed, packet);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod addr;
pub mod capture;
pub mod checksum;
pub mod error;
pub mod flow;
pub mod packet;
pub mod pcap;
pub mod wire;

pub use addr::MacAddr;
pub use capture::{Trace, TracePacket};
pub use error::{BuildError, ParseError};
pub use flow::{Flow, FlowKey, FlowTable};
pub use packet::{IpRepr, Packet, Transport};
