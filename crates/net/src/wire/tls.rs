//! TLS record layer and ClientHello/ServerHello handshake parsing/emission.
//!
//! Covers exactly what the traffic generator and the tokenizer need: record
//! framing, hello messages with ciphersuites and SNI, and opaque
//! application-data records. The ciphersuite registry mirrors the
//! IANA values the paper discusses (e.g. `0xC02B`/`0xC02C` differing only in
//! key length — NorBERT's nearest-neighbor example).

use crate::error::ParseError;
use crate::wire::{Cursor, Writer};

/// TLS record header length.
pub const RECORD_HEADER_LEN: usize = 5;

/// TLS record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentType {
    /// ChangeCipherSpec (20).
    ChangeCipherSpec,
    /// Alert (21).
    Alert,
    /// Handshake (22).
    Handshake,
    /// ApplicationData (23).
    ApplicationData,
    /// Anything else, value preserved.
    Other(u8),
}

impl From<u8> for ContentType {
    fn from(v: u8) -> Self {
        match v {
            20 => ContentType::ChangeCipherSpec,
            21 => ContentType::Alert,
            22 => ContentType::Handshake,
            23 => ContentType::ApplicationData,
            other => ContentType::Other(other),
        }
    }
}

impl From<ContentType> for u8 {
    fn from(v: ContentType) -> u8 {
        match v {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
            ContentType::Other(x) => x,
        }
    }
}

/// A selection of real IANA ciphersuite values with semantic structure the
/// models should discover (ECDHE/RSA clusters, AES-128 vs AES-256 siblings,
/// legacy weak suites).
pub mod suites {
    /// ECDHE-ECDSA AES-128-GCM SHA256.
    pub const ECDHE_ECDSA_AES128_GCM: u16 = 0xc02b;
    /// ECDHE-ECDSA AES-256-GCM SHA384 (key-length sibling of `0xC02B`).
    pub const ECDHE_ECDSA_AES256_GCM: u16 = 0xc02c;
    /// ECDHE-RSA AES-128-GCM SHA256 (IANA 49199, the NorBERT example).
    pub const ECDHE_RSA_AES128_GCM: u16 = 0xc02f;
    /// ECDHE-RSA AES-256-GCM SHA384 (IANA 49200, its nearest neighbor).
    pub const ECDHE_RSA_AES256_GCM: u16 = 0xc030;
    /// TLS 1.3 AES-128-GCM SHA256.
    pub const TLS13_AES128_GCM: u16 = 0x1301;
    /// TLS 1.3 AES-256-GCM SHA384.
    pub const TLS13_AES256_GCM: u16 = 0x1302;
    /// TLS 1.3 ChaCha20-Poly1305.
    pub const TLS13_CHACHA20: u16 = 0x1303;
    /// Legacy RSA AES-128-CBC SHA (weak cluster).
    pub const RSA_AES128_CBC_SHA: u16 = 0x002f;
    /// Legacy RSA 3DES (weak cluster).
    pub const RSA_3DES_EDE_CBC_SHA: u16 = 0x000a;
    /// Legacy RC4-MD5 (weak cluster).
    pub const RSA_RC4_128_MD5: u16 = 0x0004;

    /// True for suites in the modern (AEAD, forward-secret) cluster.
    pub fn is_strong(suite: u16) -> bool {
        matches!(
            suite,
            ECDHE_ECDSA_AES128_GCM
                | ECDHE_ECDSA_AES256_GCM
                | ECDHE_RSA_AES128_GCM
                | ECDHE_RSA_AES256_GCM
                | TLS13_AES128_GCM
                | TLS13_AES256_GCM
                | TLS13_CHACHA20
        )
    }
}

/// A TLS record: content type, legacy version, and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Content type.
    pub content_type: ContentType,
    /// Legacy record version (e.g. 0x0303).
    pub version: u16,
    /// Record payload.
    pub payload: Vec<u8>,
}

impl Record {
    /// Parse one record from the front of `bytes`, returning it and the
    /// number of bytes consumed.
    pub fn parse(bytes: &[u8]) -> Result<(Record, usize), ParseError> {
        let mut c = Cursor::new(bytes, "tls record");
        let content_type = ContentType::from(c.u8()?);
        let version = c.u16()?;
        let len = c.u16()? as usize;
        let payload = c.bytes(len)?.to_vec();
        Ok((Record { content_type, version, payload }, RECORD_HEADER_LEN + len))
    }

    /// Parse a sequence of back-to-back records.
    pub fn parse_all(mut bytes: &[u8]) -> Result<Vec<Record>, ParseError> {
        let mut records = Vec::new();
        while !bytes.is_empty() {
            let (rec, used) = Record::parse(bytes)?;
            records.push(rec);
            bytes = &bytes[used..];
        }
        Ok(records)
    }

    /// Encode to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(RECORD_HEADER_LEN + self.payload.len());
        w.u8(self.content_type.into());
        w.u16(self.version);
        w.u16(self.payload.len() as u16);
        w.bytes(&self.payload);
        w.into_vec()
    }
}

/// A parsed ClientHello.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// Legacy client version (0x0303 for TLS 1.2+).
    pub version: u16,
    /// 32-byte client random.
    pub random: [u8; 32],
    /// Offered ciphersuites in preference order.
    pub ciphersuites: Vec<u16>,
    /// Server name from the SNI extension, if present.
    pub server_name: Option<String>,
}

impl ClientHello {
    /// Encode as a handshake message body (type + length + hello fields).
    pub fn emit(&self) -> Vec<u8> {
        let mut body = Writer::new();
        body.u16(self.version);
        body.bytes(&self.random);
        body.u8(0); // session id length
        body.u16((self.ciphersuites.len() * 2) as u16);
        for s in &self.ciphersuites {
            body.u16(*s);
        }
        body.u8(1); // compression methods length
        body.u8(0); // null compression
                    // Extensions.
        let mut ext = Writer::new();
        if let Some(name) = &self.server_name {
            ext.u16(0x0000); // server_name extension
            let inner_len = name.len() + 5;
            ext.u16(inner_len as u16);
            ext.u16((name.len() + 3) as u16); // server name list length
            ext.u8(0); // host_name type
            ext.u16(name.len() as u16);
            ext.bytes(name.as_bytes());
        }
        body.u16(ext.len() as u16);
        body.bytes(ext.as_slice());

        let mut msg = Writer::new();
        msg.u8(1); // handshake type: client_hello
        let len = body.len();
        msg.u8((len >> 16) as u8);
        msg.u16((len & 0xffff) as u16);
        msg.bytes(body.as_slice());
        msg.into_vec()
    }

    /// Parse a handshake message body produced by [`ClientHello::emit`] (or
    /// a real stack with the same subset of fields).
    pub fn parse(bytes: &[u8]) -> Result<ClientHello, ParseError> {
        let mut c = Cursor::new(bytes, "tls client_hello");
        let msg_type = c.u8()?;
        if msg_type != 1 {
            return Err(ParseError::BadValue {
                what: "tls handshake type",
                value: msg_type as u64,
            });
        }
        let hi = c.u8()? as usize;
        let lo = c.u16()? as usize;
        let body_len = (hi << 16) | lo;
        if body_len > c.remaining() {
            return Err(ParseError::BadLength { what: "tls handshake length" });
        }
        let version = c.u16()?;
        let mut random = [0u8; 32];
        random.copy_from_slice(c.bytes(32)?);
        let sid_len = c.u8()? as usize;
        c.skip(sid_len)?;
        let cs_len = c.u16()? as usize;
        if !cs_len.is_multiple_of(2) {
            return Err(ParseError::BadLength { what: "tls ciphersuites" });
        }
        let mut ciphersuites = Vec::with_capacity(cs_len / 2);
        for _ in 0..cs_len / 2 {
            ciphersuites.push(c.u16()?);
        }
        let comp_len = c.u8()? as usize;
        c.skip(comp_len)?;
        let mut server_name = None;
        if c.remaining() >= 2 {
            let ext_total = c.u16()? as usize;
            let mut read = 0;
            while read + 4 <= ext_total && c.remaining() >= 4 {
                let ext_type = c.u16()?;
                let ext_len = c.u16()? as usize;
                let data = c.bytes(ext_len)?;
                read += 4 + ext_len;
                if ext_type == 0x0000 && data.len() >= 5 {
                    let name_len = u16::from_be_bytes([data[3], data[4]]) as usize;
                    if 5 + name_len <= data.len() {
                        server_name =
                            Some(String::from_utf8_lossy(&data[5..5 + name_len]).into_owned());
                    }
                }
            }
        }
        Ok(ClientHello { version, random, ciphersuites, server_name })
    }
}

/// A parsed ServerHello (subset: version, random, chosen suite).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// Negotiated legacy version.
    pub version: u16,
    /// 32-byte server random.
    pub random: [u8; 32],
    /// Selected ciphersuite.
    pub ciphersuite: u16,
}

impl ServerHello {
    /// Encode as a handshake message body.
    pub fn emit(&self) -> Vec<u8> {
        let mut body = Writer::new();
        body.u16(self.version);
        body.bytes(&self.random);
        body.u8(0); // session id length
        body.u16(self.ciphersuite);
        body.u8(0); // null compression
        body.u16(0); // no extensions

        let mut msg = Writer::new();
        msg.u8(2); // handshake type: server_hello
        let len = body.len();
        msg.u8((len >> 16) as u8);
        msg.u16((len & 0xffff) as u16);
        msg.bytes(body.as_slice());
        msg.into_vec()
    }

    /// Parse a handshake message body.
    pub fn parse(bytes: &[u8]) -> Result<ServerHello, ParseError> {
        let mut c = Cursor::new(bytes, "tls server_hello");
        let msg_type = c.u8()?;
        if msg_type != 2 {
            return Err(ParseError::BadValue {
                what: "tls handshake type",
                value: msg_type as u64,
            });
        }
        c.skip(3)?; // length
        let version = c.u16()?;
        let mut random = [0u8; 32];
        random.copy_from_slice(c.bytes(32)?);
        let sid_len = c.u8()? as usize;
        c.skip(sid_len)?;
        let ciphersuite = c.u16()?;
        Ok(ServerHello { version, random, ciphersuite })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        let rec = Record {
            content_type: ContentType::ApplicationData,
            version: 0x0303,
            payload: vec![1, 2, 3, 4],
        };
        let bytes = rec.emit();
        let (parsed, used) = Record::parse(&bytes).unwrap();
        assert_eq!(parsed, rec);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn parse_all_splits_records() {
        let a = Record { content_type: ContentType::Handshake, version: 0x0303, payload: vec![9] };
        let b = Record { content_type: ContentType::Alert, version: 0x0303, payload: vec![2, 40] };
        let mut bytes = a.emit();
        bytes.extend(b.emit());
        let records = Record::parse_all(&bytes).unwrap();
        assert_eq!(records, vec![a, b]);
    }

    #[test]
    fn client_hello_round_trip_with_sni() {
        let hello = ClientHello {
            version: 0x0303,
            random: [7; 32],
            ciphersuites: vec![
                suites::TLS13_AES128_GCM,
                suites::ECDHE_RSA_AES128_GCM,
                suites::ECDHE_RSA_AES256_GCM,
            ],
            server_name: Some("video.example.com".to_string()),
        };
        let parsed = ClientHello::parse(&hello.emit()).unwrap();
        assert_eq!(parsed, hello);
    }

    #[test]
    fn client_hello_without_sni() {
        let hello = ClientHello {
            version: 0x0301,
            random: [0; 32],
            ciphersuites: vec![suites::RSA_RC4_128_MD5],
            server_name: None,
        };
        let parsed = ClientHello::parse(&hello.emit()).unwrap();
        assert_eq!(parsed, hello);
    }

    #[test]
    fn server_hello_round_trip() {
        let hello = ServerHello {
            version: 0x0303,
            random: [3; 32],
            ciphersuite: suites::ECDHE_ECDSA_AES256_GCM,
        };
        let parsed = ServerHello::parse(&hello.emit()).unwrap();
        assert_eq!(parsed, hello);
    }

    #[test]
    fn strength_classifier_matches_clusters() {
        assert!(suites::is_strong(suites::ECDHE_RSA_AES128_GCM));
        assert!(suites::is_strong(suites::TLS13_CHACHA20));
        assert!(!suites::is_strong(suites::RSA_RC4_128_MD5));
        assert!(!suites::is_strong(suites::RSA_3DES_EDE_CBC_SHA));
    }

    #[test]
    fn truncated_hellos_rejected() {
        let hello = ClientHello {
            version: 0x0303,
            random: [1; 32],
            ciphersuites: vec![0x1301],
            server_name: Some("x.y".into()),
        };
        let bytes = hello.emit();
        for cut in [0, 1, 4, 10, 37] {
            assert!(ClientHello::parse(&bytes[..cut]).is_err(), "cut {cut}");
        }
        assert!(ServerHello::parse(&bytes).is_err()); // wrong type
    }
}
