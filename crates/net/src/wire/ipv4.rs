//! IPv4 packet view and representation (RFC 791).
//!
//! Options are accepted on parse (skipped via IHL) but never emitted.

use std::net::Ipv4Addr;

use crate::checksum;
use crate::error::ParseError;
use crate::wire::Writer;

/// Minimum (and emitted) IPv4 header length.
pub const HEADER_LEN: usize = 20;

/// IP protocol numbers this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// SCTP (132) — recognised because the paper leans on its semantics.
    Sctp,
    /// GRE (47).
    Gre,
    /// Anything else, value preserved.
    Other(u8),
}

impl From<u8> for Protocol {
    fn from(v: u8) -> Self {
        match v {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            47 => Protocol::Gre,
            132 => Protocol::Sctp,
            other => Protocol::Other(other),
        }
    }
}

impl From<Protocol> for u8 {
    fn from(v: Protocol) -> u8 {
        match v {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Gre => 47,
            Protocol::Sctp => 132,
            Protocol::Other(x) => x,
        }
    }
}

/// Zero-copy view of an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap `buffer`, validating version, IHL, and total length.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated { what: "ipv4", needed: HEADER_LEN, got: len });
        }
        let b = buffer.as_ref();
        let version = b[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadValue { what: "ipv4 version", value: version as u64 });
        }
        let ihl = usize::from(b[0] & 0x0f) * 4;
        if ihl < HEADER_LEN || ihl > len {
            return Err(ParseError::BadLength { what: "ipv4 ihl" });
        }
        let total = usize::from(u16::from_be_bytes([b[2], b[3]]));
        if total < ihl || total > len {
            return Err(ParseError::BadLength { what: "ipv4 total length" });
        }
        Ok(Packet { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        usize::from(self.b()[0] & 0x0f) * 4
    }

    /// Total length field (header plus payload).
    pub fn total_len(&self) -> usize {
        usize::from(u16::from_be_bytes([self.b()[2], self.b()[3]]))
    }

    /// Differentiated services byte.
    pub fn dscp_ecn(&self) -> u8 {
        self.b()[1]
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.b()[6] & 0x40 != 0
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.b()[8]
    }

    /// Next-protocol field.
    pub fn protocol(&self) -> Protocol {
        Protocol::from(self.b()[9])
    }

    /// Header checksum field as transmitted.
    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes([self.b()[10], self.b()[11]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// True when the header checksum verifies.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(&self.b()[..self.header_len()])
    }

    /// Payload as delimited by the total-length field.
    pub fn payload(&self) -> &[u8] {
        &self.b()[self.header_len()..self.total_len()]
    }
}

/// Owned representation of an IPv4 header (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Next protocol.
    pub protocol: Protocol,
    /// Payload length in bytes (excludes this header).
    pub payload_len: usize,
    /// Time to live.
    pub ttl: u8,
    /// Identification field.
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// DSCP/ECN byte.
    pub dscp_ecn: u8,
}

impl Repr {
    /// Parse from a checked view, verifying the header checksum.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Result<Repr, ParseError> {
        if !packet.verify_checksum() {
            return Err(ParseError::BadChecksum { what: "ipv4" });
        }
        Ok(Repr {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            protocol: packet.protocol(),
            payload_len: packet.total_len() - packet.header_len(),
            ttl: packet.ttl(),
            ident: packet.ident(),
            dont_frag: packet.dont_frag(),
            dscp_ecn: packet.dscp_ecn(),
        })
    }

    /// Encoded header length.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Append the encoded header (with computed checksum) to `w`.
    pub fn emit(&self, w: &mut Writer) {
        let start = w.len();
        w.u8(0x45); // version 4, IHL 5
        w.u8(self.dscp_ecn);
        w.u16((HEADER_LEN + self.payload_len) as u16);
        w.u16(self.ident);
        w.u16(if self.dont_frag { 0x4000 } else { 0x0000 });
        w.u8(self.ttl);
        w.u8(self.protocol.into());
        w.u16(0); // checksum placeholder
        w.bytes(&self.src.octets());
        w.bytes(&self.dst.octets());
        let sum = checksum::internet_checksum(&w.as_slice()[start..start + HEADER_LEN]);
        w.patch_u16(start + 10, sum).expect("header just written");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repr {
        Repr {
            src: Ipv4Addr::new(192, 168, 1, 10),
            dst: Ipv4Addr::new(8, 8, 8, 8),
            protocol: Protocol::Udp,
            payload_len: 12,
            ttl: 64,
            ident: 0x3344,
            dont_frag: true,
            dscp_ecn: 0,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample();
        let mut w = Writer::new();
        repr.emit(&mut w);
        w.bytes(&[0xaa; 12]);
        let bytes = w.into_vec();
        let packet = Packet::new_checked(&bytes[..]).unwrap();
        assert!(packet.verify_checksum());
        assert_eq!(Repr::parse(&packet).unwrap(), repr);
        assert_eq!(packet.payload(), &[0xaa; 12]);
    }

    #[test]
    fn corrupted_checksum_rejected_by_repr_parse() {
        let repr = sample();
        let mut w = Writer::new();
        repr.emit(&mut w);
        w.bytes(&[0xaa; 12]);
        let mut bytes = w.into_vec();
        bytes[8] ^= 0x01; // flip TTL
        let packet = Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&packet), Err(ParseError::BadChecksum { what: "ipv4" }));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = [0u8; 20];
        bytes[0] = 0x65; // version 6
        assert!(matches!(
            Packet::new_checked(&bytes[..]),
            Err(ParseError::BadValue { what: "ipv4 version", .. })
        ));
    }

    #[test]
    fn total_length_must_fit_buffer() {
        let repr = sample();
        let mut w = Writer::new();
        repr.emit(&mut w);
        // Claimed 12 payload bytes but provide none.
        let bytes = w.into_vec();
        assert!(matches!(
            Packet::new_checked(&bytes[..]),
            Err(ParseError::BadLength { what: "ipv4 total length" })
        ));
    }

    #[test]
    fn trailing_garbage_excluded_from_payload() {
        let mut repr = sample();
        repr.payload_len = 2;
        let mut w = Writer::new();
        repr.emit(&mut w);
        w.bytes(&[1, 2]);
        w.bytes(&[0xff; 8]); // link-layer padding
        let bytes = w.into_vec();
        let packet = Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(packet.payload(), &[1, 2]);
    }

    #[test]
    fn protocol_numbers_round_trip() {
        for v in 0u8..=255 {
            assert_eq!(u8::from(Protocol::from(v)), v);
        }
    }
}
