//! ICMPv4 message view and representation (RFC 792). Echo-centric.

use crate::checksum;
use crate::error::ParseError;
use crate::wire::Writer;

/// ICMP header length (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMP message kinds this crate distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Echo reply (type 0).
    EchoReply,
    /// Destination unreachable (type 3), with code.
    DestUnreachable(u8),
    /// Echo request (type 8).
    EchoRequest,
    /// Time exceeded (type 11), with code.
    TimeExceeded(u8),
    /// Anything else: (type, code).
    Other(u8, u8),
}

impl Kind {
    /// The (type, code) pair on the wire.
    pub fn type_code(&self) -> (u8, u8) {
        match *self {
            Kind::EchoReply => (0, 0),
            Kind::DestUnreachable(c) => (3, c),
            Kind::EchoRequest => (8, 0),
            Kind::TimeExceeded(c) => (11, c),
            Kind::Other(t, c) => (t, c),
        }
    }

    /// Classify a (type, code) pair.
    pub fn from_type_code(t: u8, c: u8) -> Kind {
        match t {
            0 => Kind::EchoReply,
            3 => Kind::DestUnreachable(c),
            8 => Kind::EchoRequest,
            11 => Kind::TimeExceeded(c),
            _ => Kind::Other(t, c),
        }
    }
}

/// Zero-copy view of an ICMPv4 message.
#[derive(Debug, Clone)]
pub struct Message<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Message<T> {
    /// Wrap `buffer`, checking the minimum length.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated { what: "icmp", needed: HEADER_LEN, got: len });
        }
        Ok(Message { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Message kind (type and code).
    pub fn kind(&self) -> Kind {
        Kind::from_type_code(self.b()[0], self.b()[1])
    }

    /// Echo identifier (meaningful for echo messages).
    pub fn ident(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Echo sequence number (meaningful for echo messages).
    pub fn seq_no(&self) -> u16 {
        u16::from_be_bytes([self.b()[6], self.b()[7]])
    }

    /// Verify the message checksum over the whole buffer.
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.b())
    }

    /// Data after the 8-byte header.
    pub fn payload(&self) -> &[u8] {
        &self.b()[HEADER_LEN..]
    }
}

/// Owned representation of an ICMP echo-style message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Message kind.
    pub kind: Kind,
    /// Identifier (echo) or zero.
    pub ident: u16,
    /// Sequence number (echo) or zero.
    pub seq_no: u16,
}

impl Repr {
    /// Parse from a checked view, verifying the checksum.
    pub fn parse<T: AsRef<[u8]>>(msg: &Message<T>) -> Result<Repr, ParseError> {
        if !msg.verify_checksum() {
            return Err(ParseError::BadChecksum { what: "icmp" });
        }
        Ok(Repr { kind: msg.kind(), ident: msg.ident(), seq_no: msg.seq_no() })
    }

    /// Encoded length including `payload_len` data bytes.
    pub fn buffer_len(&self, payload_len: usize) -> usize {
        HEADER_LEN + payload_len
    }

    /// Append the encoded message with `payload`, computing the checksum.
    pub fn emit(&self, w: &mut Writer, payload: &[u8]) {
        let start = w.len();
        let (t, c) = self.kind.type_code();
        w.u8(t);
        w.u8(c);
        w.u16(0); // checksum placeholder
        w.u16(self.ident);
        w.u16(self.seq_no);
        w.bytes(payload);
        let sum = checksum::internet_checksum(&w.as_slice()[start..]);
        w.patch_u16(start + 2, sum).expect("header just written");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let repr = Repr { kind: Kind::EchoRequest, ident: 0x10, seq_no: 3 };
        let mut w = Writer::new();
        repr.emit(&mut w, b"ping-data");
        let bytes = w.into_vec();
        let msg = Message::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&msg).unwrap(), repr);
        assert_eq!(msg.payload(), b"ping-data");
    }

    #[test]
    fn corrupted_checksum_detected() {
        let repr = Repr { kind: Kind::EchoReply, ident: 1, seq_no: 1 };
        let mut w = Writer::new();
        repr.emit(&mut w, &[]);
        let mut bytes = w.into_vec();
        bytes[5] ^= 1;
        let msg = Message::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&msg), Err(ParseError::BadChecksum { what: "icmp" }));
    }

    #[test]
    fn kind_round_trip() {
        for kind in [
            Kind::EchoReply,
            Kind::EchoRequest,
            Kind::DestUnreachable(3),
            Kind::TimeExceeded(0),
            Kind::Other(42, 7),
        ] {
            let (t, c) = kind.type_code();
            assert_eq!(Kind::from_type_code(t, c), kind);
        }
    }
}
