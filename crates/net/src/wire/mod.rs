//! Typed views over raw byte buffers for each supported protocol.
//!
//! The idiom follows `smoltcp`: a zero-copy `Packet<T: AsRef<[u8]>>` view
//! with checked constructors and field accessors, plus an owned `*Repr`
//! struct with `parse` / `emit` / `buffer_len` for building packets.

pub mod arp;
pub mod dhcp;
pub mod dns;
pub mod ethernet;
pub mod http;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod ntp;
pub mod tcp;
pub mod tls;
pub mod udp;

use crate::error::{BuildError, ParseError};

/// A bounds-checked big-endian reader over a byte slice.
///
/// All wire parsers in this crate go through `Cursor` so that malformed
/// input surfaces as a [`ParseError`] rather than a panic.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> Cursor<'a> {
    /// Create a cursor labelled with the protocol name used in errors.
    pub fn new(data: &'a [u8], what: &'static str) -> Self {
        Cursor { data, pos: 0, what }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining after the current position.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<(), ParseError> {
        if self.remaining() < n {
            Err(ParseError::Truncated { what: self.what, needed: n, got: self.remaining() })
        } else {
            Ok(())
        }
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, ParseError> {
        self.need(1)?;
        let v = self.data[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, ParseError> {
        self.need(2)?;
        let v = u16::from_be_bytes([self.data[self.pos], self.data[self.pos + 1]]);
        self.pos += 2;
        Ok(v)
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, ParseError> {
        self.need(4)?;
        let b = &self.data[self.pos..self.pos + 4];
        self.pos += 4;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, ParseError> {
        self.need(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_be_bytes(b))
    }

    /// Borrow the next `n` bytes and advance.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        self.need(n)?;
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Borrow everything after the current position and advance to the end.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }

    /// Skip `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), ParseError> {
        self.need(n)?;
        self.pos += n;
        Ok(())
    }
}

/// A bounds-checked big-endian writer that appends to a `Vec<u8>`.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Create an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Create a writer with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer { buf: Vec::with_capacity(cap) }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrite two bytes at `at` with a big-endian u16 (for length or
    /// checksum backpatching).
    pub fn patch_u16(&mut self, at: usize, v: u16) -> Result<(), BuildError> {
        if at + 2 > self.buf.len() {
            return Err(BuildError::BufferTooSmall { needed: at + 2, got: self.buf.len() });
        }
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
        Ok(())
    }

    /// Consume the writer, returning the buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Immutable view of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_reads_values_in_order() {
        let data = [0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07];
        let mut c = Cursor::new(&data, "test");
        assert_eq!(c.u8().unwrap(), 0x01);
        assert_eq!(c.u16().unwrap(), 0x0203);
        assert_eq!(c.u32().unwrap(), 0x04050607);
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn cursor_truncation_is_error_not_panic() {
        let data = [0x01];
        let mut c = Cursor::new(&data, "test");
        assert!(matches!(c.u32(), Err(ParseError::Truncated { what: "test", needed: 4, got: 1 })));
        // Failed read must not consume.
        assert_eq!(c.u8().unwrap(), 0x01);
    }

    #[test]
    fn writer_round_trips_cursor() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdeadbeef);
        w.u64(0x0102030405060708);
        w.bytes(b"xyz");
        let v = w.into_vec();
        let mut c = Cursor::new(&v, "test");
        assert_eq!(c.u8().unwrap(), 0xab);
        assert_eq!(c.u16().unwrap(), 0x1234);
        assert_eq!(c.u32().unwrap(), 0xdeadbeef);
        assert_eq!(c.u64().unwrap(), 0x0102030405060708);
        assert_eq!(c.rest(), b"xyz");
    }

    #[test]
    fn patch_u16_backpatches_length() {
        let mut w = Writer::new();
        w.u16(0); // placeholder
        w.bytes(&[9; 10]);
        w.patch_u16(0, 10).unwrap();
        assert_eq!(&w.as_slice()[..2], &[0, 10]);
        assert!(w.patch_u16(999, 1).is_err());
    }
}
