//! ARP packets for IPv4-over-Ethernet (RFC 826): requests, replies, and
//! gratuitous announcements — the L2 chatter every real capture contains.

use std::net::Ipv4Addr;

use crate::addr::MacAddr;
use crate::error::ParseError;
use crate::wire::{Cursor, Writer};

/// ARP packet length for Ethernet/IPv4.
pub const PACKET_LEN: usize = 28;

/// ARP operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operation {
    /// Who-has (1).
    Request,
    /// Is-at (2).
    Reply,
    /// Anything else, value preserved.
    Other(u16),
}

impl From<u16> for Operation {
    fn from(v: u16) -> Self {
        match v {
            1 => Operation::Request,
            2 => Operation::Reply,
            other => Operation::Other(other),
        }
    }
}

impl From<Operation> for u16 {
    fn from(v: Operation) -> u16 {
        match v {
            Operation::Request => 1,
            Operation::Reply => 2,
            Operation::Other(x) => x,
        }
    }
}

/// An ARP packet (Ethernet/IPv4 only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Operation.
    pub operation: Operation,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl Packet {
    /// A who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Packet {
        Packet {
            operation: Operation::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr([0; 6]),
            target_ip,
        }
    }

    /// The is-at reply answering `request`.
    pub fn reply(request: &Packet, mac: MacAddr) -> Packet {
        Packet {
            operation: Operation::Reply,
            sender_mac: mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// A gratuitous announcement (sender == target), as hosts send on boot.
    pub fn gratuitous(mac: MacAddr, ip: Ipv4Addr) -> Packet {
        Packet {
            operation: Operation::Request,
            sender_mac: mac,
            sender_ip: ip,
            target_mac: MacAddr([0; 6]),
            target_ip: ip,
        }
    }

    /// True when this is a gratuitous announcement.
    pub fn is_gratuitous(&self) -> bool {
        self.sender_ip == self.target_ip
    }

    /// Parse from the Ethernet payload.
    pub fn parse(bytes: &[u8]) -> Result<Packet, ParseError> {
        let mut c = Cursor::new(bytes, "arp");
        let htype = c.u16()?;
        let ptype = c.u16()?;
        let hlen = c.u8()?;
        let plen = c.u8()?;
        if htype != 1 || ptype != 0x0800 || hlen != 6 || plen != 4 {
            return Err(ParseError::BadValue { what: "arp htype/ptype", value: htype as u64 });
        }
        let operation = Operation::from(c.u16()?);
        let sender_mac = MacAddr::from_bytes(c.bytes(6)?).expect("6 bytes read");
        let sb = c.bytes(4)?;
        let sender_ip = Ipv4Addr::new(sb[0], sb[1], sb[2], sb[3]);
        let target_mac = MacAddr::from_bytes(c.bytes(6)?).expect("6 bytes read");
        let tb = c.bytes(4)?;
        let target_ip = Ipv4Addr::new(tb[0], tb[1], tb[2], tb[3]);
        Ok(Packet { operation, sender_mac, sender_ip, target_mac, target_ip })
    }

    /// Encode to wire bytes (the Ethernet payload).
    pub fn emit(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(PACKET_LEN);
        w.u16(1); // Ethernet
        w.u16(0x0800); // IPv4
        w.u8(6);
        w.u8(4);
        w.u16(self.operation.into());
        w.bytes(self.sender_mac.as_bytes());
        w.bytes(&self.sender_ip.octets());
        w.bytes(self.target_mac.as_bytes());
        w.bytes(&self.target_ip.octets());
        w.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (MacAddr, Ipv4Addr, Ipv4Addr) {
        (MacAddr::from_index(9), Ipv4Addr::new(192, 168, 0, 9), Ipv4Addr::new(192, 168, 0, 1))
    }

    #[test]
    fn request_reply_round_trip() {
        let (mac, ip, gw) = addrs();
        let req = Packet::request(mac, ip, gw);
        let parsed = Packet::parse(&req.emit()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.operation, Operation::Request);
        assert!(!parsed.is_gratuitous());

        let gw_mac = MacAddr::from_index(1);
        let rep = Packet::reply(&req, gw_mac);
        let parsed = Packet::parse(&rep.emit()).unwrap();
        assert_eq!(parsed, rep);
        assert_eq!(parsed.sender_ip, gw);
        assert_eq!(parsed.target_mac, mac);
    }

    #[test]
    fn gratuitous_announcement() {
        let (mac, ip, _) = addrs();
        let g = Packet::gratuitous(mac, ip);
        assert!(g.is_gratuitous());
        let parsed = Packet::parse(&g.emit()).unwrap();
        assert!(parsed.is_gratuitous());
    }

    #[test]
    fn malformed_rejected() {
        let (mac, ip, gw) = addrs();
        let bytes = Packet::request(mac, ip, gw).emit();
        assert!(Packet::parse(&bytes[..PACKET_LEN - 1]).is_err());
        let mut bad = bytes.clone();
        bad[0] = 9; // htype
        assert!(Packet::parse(&bad).is_err());
    }

    #[test]
    fn operation_round_trip() {
        for v in [1u16, 2, 77] {
            assert_eq!(u16::from(Operation::from(v)), v);
        }
    }
}
