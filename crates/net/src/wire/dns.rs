//! DNS message parsing and emission (RFC 1035).
//!
//! Supports the record types the traffic generator produces (A, AAAA, CNAME,
//! NS, MX, TXT, PTR) plus opaque passthrough for everything else, and full
//! name-compression on parse (emission writes uncompressed names, which is
//! always legal).

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use crate::error::{BuildError, ParseError};
use crate::wire::{Cursor, Writer};

/// Fixed DNS header length.
pub const HEADER_LEN: usize = 12;

/// Maximum pointer hops tolerated while decompressing a name.
const MAX_POINTER_HOPS: usize = 32;

/// Maximum encoded name length per RFC 1035.
const MAX_NAME_LEN: usize = 255;

/// A fully-qualified domain name held as lowercase labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name {
    labels: Vec<String>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Name {
        Name { labels: Vec::new() }
    }

    /// Parse a dotted name like `"www.example.com"`. Empty input or `"."`
    /// yields the root. Labels are lowercased; over-long labels error.
    pub fn parse_str(s: &str) -> Result<Name, BuildError> {
        let s = s.trim_end_matches('.');
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        let mut total = 1; // terminating root byte
        for label in s.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(BuildError::FieldTooLarge { what: "dns label" });
            }
            total += 1 + label.len();
            if total > MAX_NAME_LEN {
                return Err(BuildError::FieldTooLarge { what: "dns name" });
            }
            labels.push(label.to_ascii_lowercase());
        }
        Ok(Name { labels })
    }

    /// The labels, leftmost (most specific) first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The parent domain (drops the leftmost label); root's parent is root.
    pub fn parent(&self) -> Name {
        if self.labels.is_empty() {
            Name::root()
        } else {
            Name { labels: self.labels[1..].to_vec() }
        }
    }

    /// True when `self` equals `ancestor` or is underneath it.
    pub fn is_subdomain_of(&self, ancestor: &Name) -> bool {
        let n = ancestor.labels.len();
        self.labels.len() >= n && self.labels[self.labels.len() - n..] == ancestor.labels[..]
    }

    /// Decode a possibly-compressed name at `offset` within `message`,
    /// returning the name and the offset just past its first encoding.
    pub fn parse_wire(message: &[u8], offset: usize) -> Result<(Name, usize), ParseError> {
        let mut labels = Vec::new();
        let mut pos = offset;
        let mut end_of_first: Option<usize> = None;
        let mut hops = 0;
        let mut total = 1;
        loop {
            let len = *message.get(pos).ok_or(ParseError::BadName)? as usize;
            match len {
                0 => {
                    let end = end_of_first.unwrap_or(pos + 1);
                    return Ok((Name { labels }, end));
                }
                l if l & 0xc0 == 0xc0 => {
                    let lo = *message.get(pos + 1).ok_or(ParseError::BadName)? as usize;
                    let target = ((l & 0x3f) << 8) | lo;
                    if end_of_first.is_none() {
                        end_of_first = Some(pos + 2);
                    }
                    // Pointers must go strictly backwards to terminate.
                    if target >= pos {
                        return Err(ParseError::BadName);
                    }
                    hops += 1;
                    if hops > MAX_POINTER_HOPS {
                        return Err(ParseError::BadName);
                    }
                    pos = target;
                }
                l if l > 63 => return Err(ParseError::BadName),
                l => {
                    let bytes = message.get(pos + 1..pos + 1 + l).ok_or(ParseError::BadName)?;
                    total += 1 + l;
                    if total > MAX_NAME_LEN {
                        return Err(ParseError::BadName);
                    }
                    labels.push(String::from_utf8_lossy(bytes).to_ascii_lowercase());
                    pos += 1 + l;
                }
            }
        }
    }

    /// Append the uncompressed wire encoding to `w`.
    pub fn emit(&self, w: &mut Writer) {
        for label in &self.labels {
            debug_assert!(label.len() <= 63);
            w.u8(label.len() as u8);
            w.bytes(label.as_bytes());
        }
        w.u8(0);
    }

    /// Encoded (uncompressed) length in bytes.
    pub fn buffer_len(&self) -> usize {
        1 + self.labels.iter().map(|l| 1 + l.len()).sum::<usize>()
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        write!(f, "{}", self.labels.join("."))
    }
}

/// DNS record/query types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// IPv4 address record.
    A,
    /// Name server record.
    Ns,
    /// Canonical name record.
    Cname,
    /// Pointer (reverse) record.
    Ptr,
    /// Mail exchanger record.
    Mx,
    /// Text record.
    Txt,
    /// IPv6 address record.
    Aaaa,
    /// Anything else, value preserved.
    Other(u16),
}

impl From<u16> for RecordType {
    fn from(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            12 => RecordType::Ptr,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            other => RecordType::Other(other),
        }
    }
}

impl From<RecordType> for u16 {
    fn from(v: RecordType) -> u16 {
        match v {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Ptr => 12,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Other(x) => x,
        }
    }
}

/// DNS response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Anything else, value preserved (4 bits used).
    Other(u8),
}

impl From<u8> for Rcode {
    fn from(v: u8) -> Self {
        match v & 0x0f {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            other => Rcode::Other(other),
        }
    }
}

impl From<Rcode> for u8 {
    fn from(v: Rcode) -> u8 {
        match v {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::Other(x) => x & 0x0f,
        }
    }
}

/// A question-section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub rtype: RecordType,
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rdata {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// An IPv6 address.
    Aaaa(Ipv6Addr),
    /// A canonical-name target.
    Cname(Name),
    /// A name-server target.
    Ns(Name),
    /// A pointer target.
    Ptr(Name),
    /// Mail exchanger: (preference, host).
    Mx(u16, Name),
    /// Text payload (single string chunk).
    Txt(Vec<u8>),
    /// Unparsed bytes for unknown types.
    Opaque(Vec<u8>),
}

/// A resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record owner name.
    pub name: Name,
    /// Record type.
    pub rtype: RecordType,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed data.
    pub rdata: Rdata,
}

/// A whole DNS message (header plus all four sections; authority and
/// additional records are kept together in `extra`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// True for responses.
    pub is_response: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority + additional sections, in order.
    pub extra: Vec<Record>,
    /// Count split between authority (`extra[..ns_count]`) and additional.
    pub ns_count: usize,
}

impl Message {
    /// A query for `name` with the given type.
    pub fn query(id: u16, name: Name, rtype: RecordType) -> Message {
        Message {
            id,
            is_response: false,
            recursion_desired: true,
            rcode: Rcode::NoError,
            questions: vec![Question { name, rtype }],
            answers: Vec::new(),
            extra: Vec::new(),
            ns_count: 0,
        }
    }

    /// A response echoing `query`'s id and question with the given answers.
    pub fn response(query: &Message, rcode: Rcode, answers: Vec<Record>) -> Message {
        Message {
            id: query.id,
            is_response: true,
            recursion_desired: query.recursion_desired,
            rcode,
            questions: query.questions.clone(),
            answers,
            extra: Vec::new(),
            ns_count: 0,
        }
    }

    /// Parse a message from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Message, ParseError> {
        let mut c = Cursor::new(bytes, "dns");
        let id = c.u16()?;
        let flags = c.u16()?;
        let qd = c.u16()? as usize;
        let an = c.u16()? as usize;
        let ns = c.u16()? as usize;
        let ar = c.u16()? as usize;
        let is_response = flags & 0x8000 != 0;
        let recursion_desired = flags & 0x0100 != 0;
        let rcode = Rcode::from((flags & 0x000f) as u8);

        let mut pos = c.position();
        let mut questions = Vec::with_capacity(qd.min(64));
        for _ in 0..qd {
            let (name, next) = Name::parse_wire(bytes, pos)?;
            let mut qc = Cursor::new(bytes.get(next..).ok_or(ParseError::BadName)?, "dns");
            let rtype = RecordType::from(qc.u16()?);
            qc.u16()?; // class, ignored (IN assumed)
            pos = next + 4;
            questions.push(Question { name, rtype });
        }

        let mut answers = Vec::with_capacity(an.min(64));
        let mut extra = Vec::with_capacity((ns + ar).min(64));
        for i in 0..an + ns + ar {
            let (rec, next) = Self::parse_record(bytes, pos)?;
            pos = next;
            if i < an {
                answers.push(rec);
            } else {
                extra.push(rec);
            }
        }

        Ok(Message {
            id,
            is_response,
            recursion_desired,
            rcode,
            questions,
            answers,
            extra,
            ns_count: ns,
        })
    }

    fn parse_record(bytes: &[u8], offset: usize) -> Result<(Record, usize), ParseError> {
        let (name, next) = Name::parse_wire(bytes, offset)?;
        let tail = bytes.get(next..).ok_or(ParseError::BadName)?;
        let mut c = Cursor::new(tail, "dns record");
        let rtype = RecordType::from(c.u16()?);
        c.u16()?; // class
        let ttl = c.u32()?;
        let rdlen = c.u16()? as usize;
        let rdata_start = next + c.position();
        let rdata_bytes = bytes
            .get(rdata_start..rdata_start + rdlen)
            .ok_or(ParseError::BadLength { what: "dns rdlength" })?;
        let rdata = match rtype {
            RecordType::A => {
                let arr: [u8; 4] = rdata_bytes
                    .try_into()
                    .map_err(|_| ParseError::BadLength { what: "dns A rdata" })?;
                Rdata::A(Ipv4Addr::from(arr))
            }
            RecordType::Aaaa => {
                let arr: [u8; 16] = rdata_bytes
                    .try_into()
                    .map_err(|_| ParseError::BadLength { what: "dns AAAA rdata" })?;
                Rdata::Aaaa(Ipv6Addr::from(arr))
            }
            RecordType::Cname => Rdata::Cname(Name::parse_wire(bytes, rdata_start)?.0),
            RecordType::Ns => Rdata::Ns(Name::parse_wire(bytes, rdata_start)?.0),
            RecordType::Ptr => Rdata::Ptr(Name::parse_wire(bytes, rdata_start)?.0),
            RecordType::Mx => {
                if rdata_bytes.len() < 2 {
                    return Err(ParseError::BadLength { what: "dns MX rdata" });
                }
                let pref = u16::from_be_bytes([rdata_bytes[0], rdata_bytes[1]]);
                Rdata::Mx(pref, Name::parse_wire(bytes, rdata_start + 2)?.0)
            }
            RecordType::Txt => {
                if rdata_bytes.is_empty() {
                    Rdata::Txt(Vec::new())
                } else {
                    let n = rdata_bytes[0] as usize;
                    if 1 + n > rdata_bytes.len() {
                        return Err(ParseError::BadLength { what: "dns TXT rdata" });
                    }
                    Rdata::Txt(rdata_bytes[1..1 + n].to_vec())
                }
            }
            RecordType::Other(_) => Rdata::Opaque(rdata_bytes.to_vec()),
        };
        Ok((Record { name, rtype, ttl, rdata }, rdata_start + rdlen))
    }

    /// Encode the message to wire bytes (uncompressed names).
    pub fn emit(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(HEADER_LEN + 64);
        w.u16(self.id);
        let mut flags = 0u16;
        if self.is_response {
            flags |= 0x8000;
        }
        if self.recursion_desired {
            flags |= 0x0100;
        }
        flags |= u16::from(u8::from(self.rcode));
        w.u16(flags);
        w.u16(self.questions.len() as u16);
        w.u16(self.answers.len() as u16);
        w.u16(self.ns_count as u16);
        w.u16((self.extra.len() - self.ns_count) as u16);
        for q in &self.questions {
            q.name.emit(&mut w);
            w.u16(q.rtype.into());
            w.u16(1); // class IN
        }
        for r in self.answers.iter().chain(self.extra.iter()) {
            Self::emit_record(&mut w, r);
        }
        w.into_vec()
    }

    fn emit_record(w: &mut Writer, r: &Record) {
        r.name.emit(w);
        w.u16(r.rtype.into());
        w.u16(1); // class IN
        w.u32(r.ttl);
        let len_at = w.len();
        w.u16(0); // rdlength placeholder
        let data_at = w.len();
        match &r.rdata {
            Rdata::A(a) => w.bytes(&a.octets()),
            Rdata::Aaaa(a) => w.bytes(&a.octets()),
            Rdata::Cname(n) | Rdata::Ns(n) | Rdata::Ptr(n) => n.emit(w),
            Rdata::Mx(pref, n) => {
                w.u16(*pref);
                n.emit(w);
            }
            Rdata::Txt(t) => {
                w.u8(t.len().min(255) as u8);
                w.bytes(&t[..t.len().min(255)]);
            }
            Rdata::Opaque(bytes) => w.bytes(bytes),
        }
        let rdlen = (w.len() - data_at) as u16;
        w.patch_u16(len_at, rdlen).expect("placeholder written above");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::parse_str(s).unwrap()
    }

    #[test]
    fn name_parse_and_display() {
        let n = name("WWW.Example.COM");
        assert_eq!(n.to_string(), "www.example.com");
        assert_eq!(n.label_count(), 3);
        assert_eq!(n.parent(), name("example.com"));
        assert!(n.is_subdomain_of(&name("example.com")));
        assert!(n.is_subdomain_of(&n));
        assert!(!n.is_subdomain_of(&name("example.org")));
        assert_eq!(Name::parse_str(".").unwrap(), Name::root());
    }

    #[test]
    fn name_rejects_long_labels() {
        let long = "a".repeat(64);
        assert!(Name::parse_str(&long).is_err());
        let ok = "a".repeat(63);
        assert!(Name::parse_str(&ok).is_ok());
    }

    #[test]
    fn query_response_round_trip() {
        let q = Message::query(0x1234, name("mail.example.com"), RecordType::A);
        let bytes = q.emit();
        let parsed = Message::parse(&bytes).unwrap();
        assert_eq!(parsed, q);

        let resp = Message::response(
            &q,
            Rcode::NoError,
            vec![
                Record {
                    name: name("mail.example.com"),
                    rtype: RecordType::Cname,
                    ttl: 300,
                    rdata: Rdata::Cname(name("mx1.example.com")),
                },
                Record {
                    name: name("mx1.example.com"),
                    rtype: RecordType::A,
                    ttl: 300,
                    rdata: Rdata::A(Ipv4Addr::new(93, 184, 216, 34)),
                },
            ],
        );
        let bytes = resp.emit();
        let parsed = Message::parse(&bytes).unwrap();
        assert_eq!(parsed, resp);
        assert!(parsed.is_response);
        assert_eq!(parsed.answers.len(), 2);
    }

    #[test]
    fn all_rdata_types_round_trip() {
        let q = Message::query(9, name("example.com"), RecordType::Txt);
        let records = vec![
            Record {
                name: name("example.com"),
                rtype: RecordType::A,
                ttl: 60,
                rdata: Rdata::A(Ipv4Addr::new(1, 2, 3, 4)),
            },
            Record {
                name: name("example.com"),
                rtype: RecordType::Aaaa,
                ttl: 60,
                rdata: Rdata::Aaaa("2001:db8::1".parse().unwrap()),
            },
            Record {
                name: name("example.com"),
                rtype: RecordType::Ns,
                ttl: 60,
                rdata: Rdata::Ns(name("ns1.example.com")),
            },
            Record {
                name: name("example.com"),
                rtype: RecordType::Mx,
                ttl: 60,
                rdata: Rdata::Mx(10, name("mx.example.com")),
            },
            Record {
                name: name("example.com"),
                rtype: RecordType::Txt,
                ttl: 60,
                rdata: Rdata::Txt(b"v=spf1 -all".to_vec()),
            },
            Record {
                name: name("4.3.2.1.in-addr.arpa"),
                rtype: RecordType::Ptr,
                ttl: 60,
                rdata: Rdata::Ptr(name("example.com")),
            },
            Record {
                name: name("example.com"),
                rtype: RecordType::Other(99),
                ttl: 60,
                rdata: Rdata::Opaque(vec![1, 2, 3]),
            },
        ];
        let resp = Message::response(&q, Rcode::NoError, records.clone());
        let parsed = Message::parse(&resp.emit()).unwrap();
        assert_eq!(parsed.answers, records);
    }

    #[test]
    fn compressed_names_decoded() {
        // Hand-build: header + question "a.b" + answer with pointer to the
        // question name at offset 12.
        let mut w = Writer::new();
        w.u16(7); // id
        w.u16(0x8180); // response flags
        w.u16(1); // qd
        w.u16(1); // an
        w.u16(0);
        w.u16(0);
        name("a.b").emit(&mut w); // offset 12
        w.u16(1); // type A
        w.u16(1); // class IN
                  // answer: pointer to offset 12
        w.u8(0xc0);
        w.u8(12);
        w.u16(1); // type A
        w.u16(1); // class
        w.u32(300);
        w.u16(4);
        w.bytes(&[10, 0, 0, 1]);
        let msg = Message::parse(w.as_slice()).unwrap();
        assert_eq!(msg.answers[0].name, name("a.b"));
        assert_eq!(msg.answers[0].rdata, Rdata::A(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn pointer_loops_rejected() {
        // Name at offset 12 pointing at itself cannot occur (forward/self
        // pointers rejected); craft one pointing forward.
        let mut bytes = vec![0u8; 12];
        bytes.extend_from_slice(&[0xc0, 12]); // points at itself
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        // header counts: 1 question
        bytes[4] = 0;
        bytes[5] = 1;
        assert_eq!(Message::parse(&bytes), Err(ParseError::BadName));
    }

    #[test]
    fn truncated_message_rejected() {
        let q = Message::query(1, name("x.y"), RecordType::A);
        let bytes = q.emit();
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(Message::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rcode_round_trip() {
        for v in 0u8..16 {
            assert_eq!(u8::from(Rcode::from(v)), v);
        }
    }
}
