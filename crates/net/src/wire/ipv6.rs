//! IPv6 packet view and representation (RFC 8200).
//!
//! Extension headers are not interpreted; the next-header field is surfaced
//! as-is and the payload is everything after the fixed header.

use std::net::Ipv6Addr;

use crate::error::ParseError;
use crate::wire::ipv4::Protocol;
use crate::wire::Writer;

/// Fixed IPv6 header length.
pub const HEADER_LEN: usize = 40;

/// Zero-copy view of an IPv6 packet.
#[derive(Debug, Clone)]
pub struct Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Packet<T> {
    /// Wrap `buffer`, validating version and payload length.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated { what: "ipv6", needed: HEADER_LEN, got: len });
        }
        let b = buffer.as_ref();
        let version = b[0] >> 4;
        if version != 6 {
            return Err(ParseError::BadValue { what: "ipv6 version", value: version as u64 });
        }
        let payload_len = usize::from(u16::from_be_bytes([b[4], b[5]]));
        if HEADER_LEN + payload_len > len {
            return Err(ParseError::BadLength { what: "ipv6 payload length" });
        }
        Ok(Packet { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Traffic-class byte.
    pub fn traffic_class(&self) -> u8 {
        let b = self.b();
        (b[0] << 4) | (b[1] >> 4)
    }

    /// 20-bit flow label.
    pub fn flow_label(&self) -> u32 {
        let b = self.b();
        (u32::from(b[1] & 0x0f) << 16) | (u32::from(b[2]) << 8) | u32::from(b[3])
    }

    /// Payload length field.
    pub fn payload_len(&self) -> usize {
        usize::from(u16::from_be_bytes([self.b()[4], self.b()[5]]))
    }

    /// Next-header field, mapped through the shared [`Protocol`] enum.
    pub fn next_header(&self) -> Protocol {
        Protocol::from(self.b()[6])
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.b()[7]
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv6Addr {
        let mut o = [0u8; 16];
        o.copy_from_slice(&self.b()[8..24]);
        Ipv6Addr::from(o)
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv6Addr {
        let mut o = [0u8; 16];
        o.copy_from_slice(&self.b()[24..40]);
        Ipv6Addr::from(o)
    }

    /// Payload as delimited by the payload-length field.
    pub fn payload(&self) -> &[u8] {
        &self.b()[HEADER_LEN..HEADER_LEN + self.payload_len()]
    }
}

/// Owned representation of an IPv6 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
    /// Next header (transport protocol).
    pub next_header: Protocol,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Hop limit.
    pub hop_limit: u8,
    /// Flow label (20 bits used).
    pub flow_label: u32,
}

impl Repr {
    /// Parse from a checked view.
    pub fn parse<T: AsRef<[u8]>>(packet: &Packet<T>) -> Repr {
        Repr {
            src: packet.src_addr(),
            dst: packet.dst_addr(),
            next_header: packet.next_header(),
            payload_len: packet.payload_len(),
            hop_limit: packet.hop_limit(),
            flow_label: packet.flow_label(),
        }
    }

    /// Encoded header length.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Append the encoded header to `w`.
    pub fn emit(&self, w: &mut Writer) {
        let fl = self.flow_label & 0x000f_ffff;
        w.u8(0x60);
        w.u8(((fl >> 16) & 0x0f) as u8);
        w.u16((fl & 0xffff) as u16);
        w.u16(self.payload_len as u16);
        w.u8(self.next_header.into());
        w.u8(self.hop_limit);
        w.bytes(&self.src.octets());
        w.bytes(&self.dst.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repr {
        Repr {
            src: "fdaa::1".parse().unwrap(),
            dst: "2001:db8::2".parse().unwrap(),
            next_header: Protocol::Tcp,
            payload_len: 5,
            hop_limit: 64,
            flow_label: 0xabcde,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample();
        let mut w = Writer::new();
        repr.emit(&mut w);
        w.bytes(&[1, 2, 3, 4, 5]);
        let bytes = w.into_vec();
        let packet = Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&packet), repr);
        assert_eq!(packet.payload(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn version_checked() {
        let mut bytes = [0u8; HEADER_LEN];
        bytes[0] = 0x45;
        assert!(matches!(
            Packet::new_checked(&bytes[..]),
            Err(ParseError::BadValue { what: "ipv6 version", .. })
        ));
    }

    #[test]
    fn payload_length_checked() {
        let repr = sample();
        let mut w = Writer::new();
        repr.emit(&mut w); // claims 5 payload bytes, provides none
        assert!(Packet::new_checked(&w.into_vec()[..]).is_err());
    }

    #[test]
    fn flow_label_masked_to_20_bits() {
        let mut repr = sample();
        repr.flow_label = 0xfff_ffff;
        let mut w = Writer::new();
        repr.payload_len = 0;
        repr.emit(&mut w);
        let bytes = w.into_vec();
        let packet = Packet::new_checked(&bytes[..]).unwrap();
        assert_eq!(packet.flow_label(), 0xf_ffff);
    }
}
