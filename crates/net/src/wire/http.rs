//! HTTP/1.1 message-head parsing and emission (request/status line plus
//! headers; bodies are carried opaquely).

use std::fmt;

use crate::error::ParseError;

/// HTTP request methods this crate distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// GET.
    Get,
    /// POST.
    Post,
    /// PUT.
    Put,
    /// DELETE.
    Delete,
    /// HEAD.
    Head,
    /// OPTIONS.
    Options,
}

impl Method {
    /// Canonical token.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Head => "HEAD",
            Method::Options => "OPTIONS",
        }
    }

    /// Parse a method token.
    pub fn parse(s: &str) -> Result<Method, ParseError> {
        match s {
            "GET" => Ok(Method::Get),
            "POST" => Ok(Method::Post),
            "PUT" => Ok(Method::Put),
            "DELETE" => Ok(Method::Delete),
            "HEAD" => Ok(Method::Head),
            "OPTIONS" => Ok(Method::Options),
            _ => Err(ParseError::BadSyntax { what: "http method" }),
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An ordered list of header name/value pairs (names kept as sent).
pub type Headers = Vec<(String, String)>;

fn get_header<'a>(headers: &'a Headers, name: &str) -> Option<&'a str> {
    headers.iter().find(|(n, _)| n.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
}

/// An HTTP request head plus opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request target (path and query).
    pub target: String,
    /// Headers in order.
    pub headers: Headers,
    /// Opaque body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// Convenience constructor for a GET with standard headers.
    pub fn get(host: &str, target: &str, user_agent: &str) -> Request {
        Request {
            method: Method::Get,
            target: target.to_string(),
            headers: vec![
                ("Host".to_string(), host.to_string()),
                ("User-Agent".to_string(), user_agent.to_string()),
                ("Accept".to_string(), "*/*".to_string()),
            ],
            body: Vec::new(),
        }
    }

    /// Value of the `Host` header, if present.
    pub fn host(&self) -> Option<&str> {
        get_header(&self.headers, "host")
    }

    /// Value of the `User-Agent` header, if present.
    pub fn user_agent(&self) -> Option<&str> {
        get_header(&self.headers, "user-agent")
    }

    /// Encode to wire bytes (adds `Content-Length` when a body is present).
    pub fn emit(&self) -> Vec<u8> {
        let mut out = format!("{} {} HTTP/1.1\r\n", self.method, self.target).into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if !self.body.is_empty() && get_header(&self.headers, "content-length").is_none() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Request, ParseError> {
        let (head, body) = split_head(bytes)?;
        let mut lines = head.split("\r\n");
        let request_line =
            lines.next().ok_or(ParseError::BadSyntax { what: "http request line" })?;
        let mut parts = request_line.split(' ');
        let method = Method::parse(parts.next().unwrap_or(""))?;
        let target = parts
            .next()
            .filter(|t| !t.is_empty())
            .ok_or(ParseError::BadSyntax { what: "http target" })?
            .to_string();
        let version = parts.next().ok_or(ParseError::BadSyntax { what: "http version" })?;
        if !version.starts_with("HTTP/1.") {
            return Err(ParseError::BadSyntax { what: "http version" });
        }
        let headers = parse_headers(lines)?;
        Ok(Request { method, target, headers, body: body.to_vec() })
    }
}

/// An HTTP response head plus opaque body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code, e.g. 200.
    pub status: u16,
    /// Reason phrase, e.g. `"OK"`.
    pub reason: String,
    /// Headers in order.
    pub headers: Headers,
    /// Opaque body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// Convenience constructor with `Content-Type` and a body.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            reason: "OK".to_string(),
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body,
        }
    }

    /// Value of the `Content-Type` header, if present.
    pub fn content_type(&self) -> Option<&str> {
        get_header(&self.headers, "content-type")
    }

    /// Encode to wire bytes (always adds `Content-Length`).
    pub fn emit(&self) -> Vec<u8> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).into_bytes();
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        if get_header(&self.headers, "content-length").is_none() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Parse from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Response, ParseError> {
        let (head, body) = split_head(bytes)?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or(ParseError::BadSyntax { what: "http status line" })?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/1.") {
            return Err(ParseError::BadSyntax { what: "http version" });
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseError::BadSyntax { what: "http status code" })?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = parse_headers(lines)?;
        Ok(Response { status, reason, headers, body: body.to_vec() })
    }
}

/// Split a raw message into its UTF-8 head (before the blank line) and body.
fn split_head(bytes: &[u8]) -> Result<(&str, &[u8]), ParseError> {
    let sep = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or(ParseError::BadSyntax { what: "http head terminator" })?;
    let head = std::str::from_utf8(&bytes[..sep])
        .map_err(|_| ParseError::BadSyntax { what: "http head utf-8" })?;
    Ok((head, &bytes[sep + 4..]))
}

fn parse_headers<'a>(lines: impl Iterator<Item = &'a str>) -> Result<Headers, ParseError> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) =
            line.split_once(':').ok_or(ParseError::BadSyntax { what: "http header" })?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::BadSyntax { what: "http header name" });
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request::get("example.com", "/index.html", "nfm/0.1");
        let bytes = req.emit();
        let parsed = Request::parse(&bytes).unwrap();
        assert_eq!(parsed.method, Method::Get);
        assert_eq!(parsed.target, "/index.html");
        assert_eq!(parsed.host(), Some("example.com"));
        assert_eq!(parsed.user_agent(), Some("nfm/0.1"));
    }

    #[test]
    fn request_with_body_gets_content_length() {
        let mut req = Request::get("h", "/submit", "ua");
        req.method = Method::Post;
        req.body = b"a=1&b=2".to_vec();
        let bytes = req.emit();
        let text = String::from_utf8_lossy(&bytes);
        assert!(text.contains("Content-Length: 7"));
        let parsed = Request::parse(&bytes).unwrap();
        assert_eq!(parsed.body, b"a=1&b=2");
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::ok("text/html", b"<html></html>".to_vec());
        let parsed = Response::parse(&resp.emit()).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.reason, "OK");
        assert_eq!(parsed.content_type(), Some("text/html"));
        assert_eq!(parsed.body, b"<html></html>");
    }

    #[test]
    fn malformed_inputs_are_errors() {
        assert!(Request::parse(b"").is_err());
        assert!(Request::parse(b"GET /\r\n\r\n").is_err()); // no version
        assert!(Request::parse(b"FETCH / HTTP/1.1\r\n\r\n").is_err()); // bad method
        assert!(Request::parse(b"GET / HTTP/1.1\r\nBad Header Name: x\r\n\r\n").is_err());
        assert!(Response::parse(b"HTTP/1.1 xyz OK\r\n\r\n").is_err());
        assert!(Response::parse(b"SPDY/1 200 OK\r\n\r\n").is_err());
    }

    #[test]
    fn reason_phrase_may_contain_spaces() {
        let parsed = Response::parse(b"HTTP/1.1 404 Not Found\r\n\r\n").unwrap();
        assert_eq!(parsed.status, 404);
        assert_eq!(parsed.reason, "Not Found");
    }

    #[test]
    fn header_values_trimmed() {
        let parsed =
            Request::parse(b"GET / HTTP/1.1\r\nHost:   spaced.example   \r\n\r\n").unwrap();
        assert_eq!(parsed.host(), Some("spaced.example"));
    }
}
