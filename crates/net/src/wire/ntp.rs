//! NTPv4 packet view and representation (RFC 5905, client/server subset).

use crate::error::ParseError;
use crate::wire::{Cursor, Writer};

/// NTP packet length (no extensions).
pub const PACKET_LEN: usize = 48;

/// NTP association modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Client request (3).
    Client,
    /// Server response (4).
    Server,
    /// Broadcast (5).
    Broadcast,
    /// Anything else (3 bits).
    Other(u8),
}

impl From<u8> for Mode {
    fn from(v: u8) -> Self {
        match v & 0x07 {
            3 => Mode::Client,
            4 => Mode::Server,
            5 => Mode::Broadcast,
            other => Mode::Other(other),
        }
    }
}

impl From<Mode> for u8 {
    fn from(v: Mode) -> u8 {
        match v {
            Mode::Client => 3,
            Mode::Server => 4,
            Mode::Broadcast => 5,
            Mode::Other(x) => x & 0x07,
        }
    }
}

/// Owned representation of an NTP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Leap indicator (2 bits).
    pub leap: u8,
    /// Protocol version (3 bits), normally 4.
    pub version: u8,
    /// Association mode.
    pub mode: Mode,
    /// Server stratum (0 for client requests).
    pub stratum: u8,
    /// Transmit timestamp (64-bit NTP fixed point).
    pub transmit_ts: u64,
    /// Originate timestamp.
    pub originate_ts: u64,
}

impl Packet {
    /// A standard client request carrying `transmit_ts`.
    pub fn client_request(transmit_ts: u64) -> Packet {
        Packet { leap: 0, version: 4, mode: Mode::Client, stratum: 0, transmit_ts, originate_ts: 0 }
    }

    /// A stratum-`stratum` server response to `request`.
    pub fn server_response(request: &Packet, stratum: u8, transmit_ts: u64) -> Packet {
        Packet {
            leap: 0,
            version: request.version,
            mode: Mode::Server,
            stratum,
            transmit_ts,
            originate_ts: request.transmit_ts,
        }
    }

    /// Parse from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Packet, ParseError> {
        let mut c = Cursor::new(bytes, "ntp");
        let b0 = c.u8()?;
        let leap = b0 >> 6;
        let version = (b0 >> 3) & 0x07;
        if !(1..=4).contains(&version) {
            return Err(ParseError::BadValue { what: "ntp version", value: version as u64 });
        }
        let mode = Mode::from(b0);
        let stratum = c.u8()?;
        c.skip(2)?; // poll, precision
        c.skip(8)?; // root delay + dispersion
        c.skip(4)?; // reference id
        c.skip(8)?; // reference timestamp
        let originate_ts = c.u64()?;
        c.skip(8)?; // receive timestamp
        let transmit_ts = c.u64()?;
        Ok(Packet { leap, version, mode, stratum, transmit_ts, originate_ts })
    }

    /// Encode to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(PACKET_LEN);
        w.u8((self.leap << 6) | ((self.version & 0x07) << 3) | u8::from(self.mode));
        w.u8(self.stratum);
        w.u8(6); // poll interval 2^6
        w.u8(0xe9); // precision
        w.u32(0); // root delay
        w.u32(0); // root dispersion
        w.u32(u32::from_be_bytes(*b"NFM\0")); // reference id
        w.u64(0); // reference timestamp
        w.u64(self.originate_ts);
        w.u64(0); // receive timestamp
        w.u64(self.transmit_ts);
        w.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_response_round_trip() {
        let req = Packet::client_request(0x1122334455667788);
        let bytes = req.emit();
        assert_eq!(bytes.len(), PACKET_LEN);
        let parsed = Packet::parse(&bytes).unwrap();
        assert_eq!(parsed, req);

        let resp = Packet::server_response(&req, 2, 0x99aabbccddeeff00);
        let parsed = Packet::parse(&resp.emit()).unwrap();
        assert_eq!(parsed, resp);
        assert_eq!(parsed.originate_ts, req.transmit_ts);
        assert_eq!(parsed.mode, Mode::Server);
    }

    #[test]
    fn truncated_rejected() {
        let req = Packet::client_request(1);
        let bytes = req.emit();
        assert!(Packet::parse(&bytes[..PACKET_LEN - 1]).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = Packet::client_request(1).emit();
        bytes[0] = (7 << 3) | 3; // version 7
        assert!(Packet::parse(&bytes).is_err());
    }

    #[test]
    fn mode_round_trip() {
        for v in 0u8..8 {
            assert_eq!(u8::from(Mode::from(v)), v);
        }
    }
}
