//! Ethernet II frame view and representation.

use crate::addr::MacAddr;
use crate::error::ParseError;
use crate::wire::Writer;

/// Ethernet II header length in bytes.
pub const HEADER_LEN: usize = 14;

/// EtherType values this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// IPv6 (0x86DD).
    Ipv6,
    /// ARP (0x0806).
    Arp,
    /// Anything else, value preserved.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x86dd => EtherType::Ipv6,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Arp => 0x0806,
            EtherType::Other(x) => x,
        }
    }
}

/// Zero-copy view of an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Frame<T> {
    /// Wrap `buffer`, verifying it is at least one header long.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated { what: "ethernet", needed: HEADER_LEN, got: len });
        }
        Ok(Frame { buffer })
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> MacAddr {
        MacAddr::from_bytes(&self.buffer.as_ref()[0..6]).expect("checked length")
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> MacAddr {
        MacAddr::from_bytes(&self.buffer.as_ref()[6..12]).expect("checked length")
    }

    /// EtherType field.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from(u16::from_be_bytes([b[12], b[13]]))
    }

    /// The frame payload following the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Release the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

/// Owned representation of an Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source MAC.
    pub src: MacAddr,
    /// Destination MAC.
    pub dst: MacAddr,
    /// Payload EtherType.
    pub ethertype: EtherType,
}

impl Repr {
    /// Parse the header fields from a checked frame view.
    pub fn parse<T: AsRef<[u8]>>(frame: &Frame<T>) -> Repr {
        Repr { src: frame.src_addr(), dst: frame.dst_addr(), ethertype: frame.ethertype() }
    }

    /// Encoded header length.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Append the encoded header to `w`.
    pub fn emit(&self, w: &mut Writer) {
        w.bytes(self.dst.as_bytes());
        w.bytes(self.src.as_bytes());
        w.u16(self.ethertype.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Repr {
        Repr {
            src: MacAddr::from_index(1),
            dst: MacAddr::from_index(2),
            ethertype: EtherType::Ipv4,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let repr = sample();
        let mut w = Writer::new();
        repr.emit(&mut w);
        let mut bytes = w.into_vec();
        bytes.extend_from_slice(b"payload");
        let frame = Frame::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&frame), repr);
        assert_eq!(frame.payload(), b"payload");
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(Frame::new_checked(&[0u8; 13][..]).is_err());
        assert!(Frame::new_checked(&[0u8; 14][..]).is_ok());
    }

    #[test]
    fn ethertype_conversion_preserves_unknown() {
        let t = EtherType::from(0x1234);
        assert_eq!(t, EtherType::Other(0x1234));
        assert_eq!(u16::from(t), 0x1234);
        assert_eq!(u16::from(EtherType::Ipv6), 0x86dd);
    }
}
