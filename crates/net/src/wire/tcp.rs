//! TCP segment view and representation (RFC 793).
//!
//! Options are accepted on parse (skipped via data offset); emission writes
//! a plain 20-byte header. Checksums use the IPv4 pseudo-header.

use std::net::Ipv4Addr;

use crate::checksum;
use crate::error::ParseError;
use crate::wire::Writer;

/// Minimum (and emitted) TCP header length.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits, kept as a transparent wrapper so sets print naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags(pub u8);

impl Flags {
    /// FIN flag.
    pub const FIN: Flags = Flags(0x01);
    /// SYN flag.
    pub const SYN: Flags = Flags(0x02);
    /// RST flag.
    pub const RST: Flags = Flags(0x04);
    /// PSH flag.
    pub const PSH: Flags = Flags(0x08);
    /// ACK flag.
    pub const ACK: Flags = Flags(0x10);
    /// SYN|ACK, the handshake reply.
    pub const SYN_ACK: Flags = Flags(0x12);
    /// PSH|ACK, a common data-bearing combination.
    pub const PSH_ACK: Flags = Flags(0x18);
    /// FIN|ACK, the usual teardown segment.
    pub const FIN_ACK: Flags = Flags(0x11);

    /// True when every bit of `other` is set in `self`.
    pub fn contains(&self, other: Flags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(&self, other: Flags) -> Flags {
        Flags(self.0 | other.0)
    }

    /// Compact text form, e.g. `"SA"` for SYN|ACK (tcpdump style).
    pub fn mnemonic(&self) -> String {
        let mut s = String::new();
        for (bit, ch) in
            [(0x02u8, 'S'), (0x10, 'A'), (0x01, 'F'), (0x04, 'R'), (0x08, 'P'), (0x20, 'U')]
        {
            if self.0 & bit != 0 {
                s.push(ch);
            }
        }
        if s.is_empty() {
            s.push('.');
        }
        s
    }
}

/// Zero-copy view of a TCP segment.
#[derive(Debug, Clone)]
pub struct Segment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Segment<T> {
    /// Wrap `buffer`, validating the data offset.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated { what: "tcp", needed: HEADER_LEN, got: len });
        }
        let b = buffer.as_ref();
        let data_off = usize::from(b[12] >> 4) * 4;
        if data_off < HEADER_LEN || data_off > len {
            return Err(ParseError::BadLength { what: "tcp data offset" });
        }
        Ok(Segment { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.b()[4..8].try_into().expect("checked length"))
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes(self.b()[8..12].try_into().expect("checked length"))
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        usize::from(self.b()[12] >> 4) * 4
    }

    /// Flag byte.
    pub fn flags(&self) -> Flags {
        Flags(self.b()[13] & 0x3f)
    }

    /// Advertised receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.b()[14], self.b()[15]])
    }

    /// Checksum field as transmitted.
    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes([self.b()[16], self.b()[17]])
    }

    /// Verify the checksum against an IPv4 pseudo-header.
    pub fn verify_checksum_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        let mut seg = self.b().to_vec();
        seg[16] = 0;
        seg[17] = 0;
        checksum::pseudo_header_checksum_v4(src, dst, 6, &seg) == self.checksum_field()
    }

    /// Payload after the header (and any options).
    pub fn payload(&self) -> &[u8] {
        &self.b()[self.header_len()..]
    }
}

/// Owned representation of a TCP segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number (meaningful when ACK flag set).
    pub ack: u32,
    /// Flag set.
    pub flags: Flags,
    /// Receive window.
    pub window: u16,
}

impl Repr {
    /// Parse the header fields from a checked view.
    pub fn parse<T: AsRef<[u8]>>(seg: &Segment<T>) -> Repr {
        Repr {
            src_port: seg.src_port(),
            dst_port: seg.dst_port(),
            seq: seg.seq(),
            ack: seg.ack(),
            flags: seg.flags(),
            window: seg.window(),
        }
    }

    /// Encoded header length (no options).
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Append header plus `payload`, computing the IPv4 pseudo-header
    /// checksum.
    pub fn emit(&self, w: &mut Writer, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) {
        let start = w.len();
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u32(self.seq);
        w.u32(self.ack);
        w.u8(0x50); // data offset 5 words
        w.u8(self.flags.0);
        w.u16(self.window);
        w.u16(0); // checksum placeholder
        w.u16(0); // urgent pointer
        w.bytes(payload);
        let sum = checksum::pseudo_header_checksum_v4(src, dst, 6, &w.as_slice()[start..]);
        w.patch_u16(start + 16, sum).expect("header just written");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn sample() -> Repr {
        Repr {
            src_port: 44123,
            dst_port: 443,
            seq: 1000,
            ack: 2000,
            flags: Flags::PSH_ACK,
            window: 29200,
        }
    }

    #[test]
    fn emit_parse_round_trip_with_checksum() {
        let repr = sample();
        let mut w = Writer::new();
        repr.emit(&mut w, SRC, DST, b"hello");
        let bytes = w.into_vec();
        let seg = Segment::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&seg), repr);
        assert_eq!(seg.payload(), b"hello");
        assert!(seg.verify_checksum_v4(SRC, DST));
        // The sum is commutative in the two addresses, so swap doesn't break
        // it — but a different address must.
        assert!(!seg.verify_checksum_v4(SRC, Ipv4Addr::new(10, 0, 0, 99)));
    }

    #[test]
    fn flags_mnemonics() {
        assert_eq!(Flags::SYN.mnemonic(), "S");
        assert_eq!(Flags::SYN_ACK.mnemonic(), "SA");
        assert_eq!(Flags::FIN_ACK.mnemonic(), "AF");
        assert_eq!(Flags(0).mnemonic(), ".");
        assert!(Flags::SYN_ACK.contains(Flags::SYN));
        assert!(!Flags::SYN.contains(Flags::ACK));
    }

    #[test]
    fn data_offset_validated() {
        let mut bytes = [0u8; HEADER_LEN];
        bytes[12] = 0x30; // offset 3 words < minimum
        assert!(Segment::new_checked(&bytes[..]).is_err());
        bytes[12] = 0xf0; // offset 15 words > buffer
        assert!(Segment::new_checked(&bytes[..]).is_err());
    }

    #[test]
    fn options_skipped_in_payload() {
        let mut bytes = [0u8; 24 + 3];
        bytes[12] = 0x60; // offset 6 words = 24 bytes
        bytes[24..].copy_from_slice(b"abc");
        let seg = Segment::new_checked(&bytes[..]).unwrap();
        assert_eq!(seg.payload(), b"abc");
    }
}
