//! UDP datagram view and representation (RFC 768).

use std::net::Ipv4Addr;

use crate::checksum;
use crate::error::ParseError;
use crate::wire::Writer;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// Zero-copy view of a UDP datagram.
#[derive(Debug, Clone)]
pub struct Datagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Datagram<T> {
    /// Wrap `buffer`, validating the length field.
    pub fn new_checked(buffer: T) -> Result<Self, ParseError> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(ParseError::Truncated { what: "udp", needed: HEADER_LEN, got: len });
        }
        let b = buffer.as_ref();
        let claimed = usize::from(u16::from_be_bytes([b[4], b[5]]));
        if claimed < HEADER_LEN || claimed > len {
            return Err(ParseError::BadLength { what: "udp length" });
        }
        Ok(Datagram { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Length field (header plus payload).
    pub fn len_field(&self) -> usize {
        usize::from(u16::from_be_bytes([self.b()[4], self.b()[5]]))
    }

    /// Checksum field as transmitted (zero means "not computed").
    pub fn checksum_field(&self) -> u16 {
        u16::from_be_bytes([self.b()[6], self.b()[7]])
    }

    /// Verify the checksum against an IPv4 pseudo-header. A transmitted
    /// checksum of zero is accepted per RFC 768.
    pub fn verify_checksum_v4(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum_field() == 0 {
            return true;
        }
        let mut seg = self.b()[..self.len_field()].to_vec();
        seg[6] = 0;
        seg[7] = 0;
        checksum::pseudo_header_checksum_v4(src, dst, 17, &seg) == self.checksum_field()
    }

    /// Payload as delimited by the length field.
    pub fn payload(&self) -> &[u8] {
        &self.b()[HEADER_LEN..self.len_field()]
    }
}

/// Owned representation of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl Repr {
    /// Parse the header fields from a checked view.
    pub fn parse<T: AsRef<[u8]>>(dgram: &Datagram<T>) -> Repr {
        Repr { src_port: dgram.src_port(), dst_port: dgram.dst_port() }
    }

    /// Encoded header length.
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN
    }

    /// Append header plus `payload`, computing the IPv4 pseudo-header
    /// checksum.
    pub fn emit(&self, w: &mut Writer, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8]) {
        let start = w.len();
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u16((HEADER_LEN + payload.len()) as u16);
        w.u16(0); // checksum placeholder
        w.bytes(payload);
        let sum = checksum::pseudo_header_checksum_v4(src, dst, 17, &w.as_slice()[start..]);
        w.patch_u16(start + 6, sum).expect("header just written");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 53);

    #[test]
    fn emit_parse_round_trip() {
        let repr = Repr { src_port: 5353, dst_port: 53 };
        let mut w = Writer::new();
        repr.emit(&mut w, SRC, DST, b"query");
        let bytes = w.into_vec();
        let d = Datagram::new_checked(&bytes[..]).unwrap();
        assert_eq!(Repr::parse(&d), repr);
        assert_eq!(d.payload(), b"query");
        assert!(d.verify_checksum_v4(SRC, DST));
    }

    #[test]
    fn zero_checksum_accepted() {
        let mut bytes = [0u8; 8];
        bytes[5] = 8; // length = 8
        let d = Datagram::new_checked(&bytes[..]).unwrap();
        assert!(d.verify_checksum_v4(SRC, DST));
    }

    #[test]
    fn length_field_validated() {
        let mut bytes = [0u8; 8];
        bytes[5] = 4; // shorter than header
        assert!(Datagram::new_checked(&bytes[..]).is_err());
        bytes[5] = 20; // longer than buffer
        assert!(Datagram::new_checked(&bytes[..]).is_err());
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let repr = Repr { src_port: 1, dst_port: 2 };
        let mut w = Writer::new();
        repr.emit(&mut w, SRC, DST, b"data!");
        let mut bytes = w.into_vec();
        bytes[10] ^= 0xff;
        let d = Datagram::new_checked(&bytes[..]).unwrap();
        assert!(!d.verify_checksum_v4(SRC, DST));
    }
}
