//! DHCPv4 message parsing and emission (RFC 2131 subset: DISCOVER / OFFER /
//! REQUEST / ACK with common options).

use std::net::Ipv4Addr;

use crate::addr::MacAddr;
use crate::error::ParseError;
use crate::wire::{Cursor, Writer};

/// Fixed portion length before options.
pub const FIXED_LEN: usize = 236;

/// Magic cookie preceding options.
pub const MAGIC: u32 = 0x6382_5363;

/// DHCP message types (option 53).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// DHCPDISCOVER (1).
    Discover,
    /// DHCPOFFER (2).
    Offer,
    /// DHCPREQUEST (3).
    Request,
    /// DHCPACK (5).
    Ack,
    /// DHCPNAK (6).
    Nak,
    /// Anything else, value preserved.
    Other(u8),
}

impl From<u8> for MessageType {
    fn from(v: u8) -> Self {
        match v {
            1 => MessageType::Discover,
            2 => MessageType::Offer,
            3 => MessageType::Request,
            5 => MessageType::Ack,
            6 => MessageType::Nak,
            other => MessageType::Other(other),
        }
    }
}

impl From<MessageType> for u8 {
    fn from(v: MessageType) -> u8 {
        match v {
            MessageType::Discover => 1,
            MessageType::Offer => 2,
            MessageType::Request => 3,
            MessageType::Ack => 5,
            MessageType::Nak => 6,
            MessageType::Other(x) => x,
        }
    }
}

/// Owned representation of a DHCP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// BOOTP op (1 request, 2 reply).
    pub op: u8,
    /// Transaction id.
    pub xid: u32,
    /// Client hardware address.
    pub chaddr: MacAddr,
    /// `yiaddr`: address offered/assigned to the client.
    pub your_addr: Ipv4Addr,
    /// Message type (option 53).
    pub msg_type: MessageType,
    /// Requested address (option 50), if present.
    pub requested_addr: Option<Ipv4Addr>,
    /// Server identifier (option 54), if present.
    pub server_id: Option<Ipv4Addr>,
    /// Hostname (option 12), if present — a device-classification signal.
    pub hostname: Option<String>,
}

impl Message {
    /// A client DISCOVER.
    pub fn discover(xid: u32, chaddr: MacAddr, hostname: Option<String>) -> Message {
        Message {
            op: 1,
            xid,
            chaddr,
            your_addr: Ipv4Addr::UNSPECIFIED,
            msg_type: MessageType::Discover,
            requested_addr: None,
            server_id: None,
            hostname,
        }
    }

    /// A server OFFER of `addr`.
    pub fn offer(discover: &Message, addr: Ipv4Addr, server_id: Ipv4Addr) -> Message {
        Message {
            op: 2,
            xid: discover.xid,
            chaddr: discover.chaddr,
            your_addr: addr,
            msg_type: MessageType::Offer,
            requested_addr: None,
            server_id: Some(server_id),
            hostname: None,
        }
    }

    /// Encode to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(FIXED_LEN + 64);
        w.u8(self.op);
        w.u8(1); // htype ethernet
        w.u8(6); // hlen
        w.u8(0); // hops
        w.u32(self.xid);
        w.u16(0); // secs
        w.u16(0); // flags
        w.u32(0); // ciaddr
        w.u32(u32::from(self.your_addr));
        w.u32(0); // siaddr
        w.u32(0); // giaddr
        w.bytes(self.chaddr.as_bytes());
        w.bytes(&[0u8; 10]); // chaddr padding
        w.bytes(&[0u8; 64]); // sname
        w.bytes(&[0u8; 128]); // file
        w.u32(MAGIC);
        // Options.
        w.u8(53);
        w.u8(1);
        w.u8(self.msg_type.into());
        if let Some(addr) = self.requested_addr {
            w.u8(50);
            w.u8(4);
            w.u32(u32::from(addr));
        }
        if let Some(addr) = self.server_id {
            w.u8(54);
            w.u8(4);
            w.u32(u32::from(addr));
        }
        if let Some(h) = &self.hostname {
            let h = &h.as_bytes()[..h.len().min(255)];
            w.u8(12);
            w.u8(h.len() as u8);
            w.bytes(h);
        }
        w.u8(255); // end option
        w.into_vec()
    }

    /// Parse from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Message, ParseError> {
        let mut c = Cursor::new(bytes, "dhcp");
        let op = c.u8()?;
        let htype = c.u8()?;
        let hlen = c.u8()?;
        if htype != 1 || hlen != 6 {
            return Err(ParseError::BadValue { what: "dhcp htype/hlen", value: htype as u64 });
        }
        c.skip(1)?; // hops
        let xid = c.u32()?;
        c.skip(4)?; // secs + flags
        c.skip(4)?; // ciaddr
        let your_addr = Ipv4Addr::from(c.u32()?);
        c.skip(8)?; // siaddr + giaddr
        let chaddr = MacAddr::from_bytes(c.bytes(6)?).expect("6 bytes read");
        c.skip(10)?; // chaddr padding
        c.skip(64 + 128)?; // sname + file
        let magic = c.u32()?;
        if magic != MAGIC {
            return Err(ParseError::BadValue { what: "dhcp magic", value: magic as u64 });
        }
        let mut msg_type = None;
        let mut requested_addr = None;
        let mut server_id = None;
        let mut hostname = None;
        loop {
            let code = c.u8()?;
            match code {
                0 => continue, // pad
                255 => break,  // end
                _ => {
                    let len = c.u8()? as usize;
                    let data = c.bytes(len)?;
                    match code {
                        53 if len == 1 => msg_type = Some(MessageType::from(data[0])),
                        50 if len == 4 => {
                            requested_addr = Some(Ipv4Addr::new(data[0], data[1], data[2], data[3]))
                        }
                        54 if len == 4 => {
                            server_id = Some(Ipv4Addr::new(data[0], data[1], data[2], data[3]))
                        }
                        12 => hostname = Some(String::from_utf8_lossy(data).into_owned()),
                        _ => {}
                    }
                }
            }
        }
        let msg_type = msg_type.ok_or(ParseError::BadSyntax { what: "dhcp missing option 53" })?;
        Ok(Message { op, xid, chaddr, your_addr, msg_type, requested_addr, server_id, hostname })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_offer_round_trip() {
        let mac = MacAddr::from_index(42);
        let disc = Message::discover(0xabcd1234, mac, Some("cam-kitchen".to_string()));
        let parsed = Message::parse(&disc.emit()).unwrap();
        assert_eq!(parsed, disc);
        assert_eq!(parsed.hostname.as_deref(), Some("cam-kitchen"));

        let offer =
            Message::offer(&disc, Ipv4Addr::new(192, 168, 1, 50), Ipv4Addr::new(192, 168, 1, 1));
        let parsed = Message::parse(&offer.emit()).unwrap();
        assert_eq!(parsed, offer);
        assert_eq!(parsed.xid, disc.xid);
    }

    #[test]
    fn request_with_options_round_trip() {
        let mut msg = Message::discover(7, MacAddr::from_index(1), None);
        msg.msg_type = MessageType::Request;
        msg.requested_addr = Some(Ipv4Addr::new(10, 1, 2, 3));
        msg.server_id = Some(Ipv4Addr::new(10, 1, 2, 1));
        let parsed = Message::parse(&msg.emit()).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = Message::discover(1, MacAddr::from_index(0), None).emit();
        bytes[FIXED_LEN] ^= 0xff;
        assert!(Message::parse(&bytes).is_err());
    }

    #[test]
    fn missing_message_type_rejected() {
        let mut bytes = Message::discover(1, MacAddr::from_index(0), None).emit();
        // Overwrite option 53 with pad bytes.
        bytes[FIXED_LEN + 4] = 0;
        bytes[FIXED_LEN + 5] = 0;
        bytes[FIXED_LEN + 6] = 0;
        assert!(Message::parse(&bytes).is_err());
    }

    #[test]
    fn truncated_rejected() {
        let bytes = Message::discover(1, MacAddr::from_index(0), None).emit();
        assert!(Message::parse(&bytes[..100]).is_err());
    }
}
