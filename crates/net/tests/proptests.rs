//! Property-based invariants for the wire formats:
//! - `parse(emit(x)) == x` for every protocol representation,
//! - parsers never panic on arbitrary bytes,
//! - checksums verify after emission and fail after corruption.

use std::net::Ipv4Addr;

use nfm_net::addr::MacAddr;
use nfm_net::packet::{Packet, Transport};
use nfm_net::wire::dns::{Message, Name, Rcode, Rdata, Record, RecordType};
use nfm_net::wire::tcp::Flags;
use nfm_net::wire::{arp, dhcp, ethernet, http, icmp, ipv4, ipv6, ntp, tcp, tls, udp};
use proptest::prelude::*;

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<u64>().prop_map(MacAddr::from_index)
}

fn arb_label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9]{1,12}").expect("valid regex")
}

fn arb_name() -> impl Strategy<Value = Name> {
    proptest::collection::vec(arb_label(), 1..5)
        .prop_map(|labels| Name::parse_str(&labels.join(".")).expect("labels are valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn udp_packet_round_trips(
        src in arb_ipv4(), dst in arb_ipv4(),
        sp in 1u16.., dp in 1u16..,
        ttl in 1u8..,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        smac in arb_mac(), dmac in arb_mac(),
    ) {
        let p = Packet::udp_v4(smac, dmac, src, dst, sp, dp, ttl, payload);
        let bytes = p.emit();
        let parsed = Packet::parse(&bytes).expect("emitted packet parses");
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn tcp_packet_round_trips(
        src in arb_ipv4(), dst in arb_ipv4(),
        sp in 1u16.., dp in 1u16..,
        seq in any::<u32>(), ack in any::<u32>(),
        flags in 0u8..0x40,
        window in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let repr = tcp::Repr { src_port: sp, dst_port: dp, seq, ack, flags: Flags(flags), window };
        let p = Packet::tcp_v4(MacAddr::from_index(1), MacAddr::from_index(2), src, dst, repr, 64, payload);
        let bytes = p.emit();
        let parsed = Packet::parse(&bytes).expect("emitted packet parses");
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn packet_parse_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Packet::parse(&bytes);
    }

    #[test]
    fn dns_parse_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::parse(&bytes);
    }

    #[test]
    fn tls_parse_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = tls::Record::parse_all(&bytes);
        let _ = tls::ClientHello::parse(&bytes);
        let _ = tls::ServerHello::parse(&bytes);
    }

    #[test]
    fn http_parse_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = http::Request::parse(&bytes);
        let _ = http::Response::parse(&bytes);
    }

    #[test]
    fn dhcp_ntp_parse_never_panic_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = dhcp::Message::parse(&bytes);
        let _ = ntp::Packet::parse(&bytes);
    }

    #[test]
    fn dns_message_round_trips(
        id in any::<u16>(),
        qname in arb_name(),
        answers in proptest::collection::vec(
            (arb_name(), any::<u32>(), any::<u32>()).prop_map(|(name, ttl, a)| Record {
                name,
                rtype: RecordType::A,
                ttl,
                rdata: Rdata::A(Ipv4Addr::from(a)),
            }),
            0..6,
        ),
    ) {
        let q = Message::query(id, qname, RecordType::A);
        let resp = Message::response(&q, Rcode::NoError, answers);
        let parsed = Message::parse(&resp.emit()).expect("emitted message parses");
        prop_assert_eq!(parsed, resp);
    }

    #[test]
    fn dns_name_hierarchy_invariants(name in arb_name()) {
        // Every name is a subdomain of each of its ancestors.
        let mut anc = name.clone();
        for _ in 0..name.label_count() {
            anc = anc.parent();
            prop_assert!(name.is_subdomain_of(&anc));
        }
        prop_assert_eq!(anc, Name::root());
    }

    #[test]
    fn flow_key_canonicalization(
        src in arb_ipv4(), dst in arb_ipv4(),
        sp in 1u16.., dp in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let fwd = Packet::udp_v4(MacAddr::from_index(1), MacAddr::from_index(2), src, dst, sp, dp, 64, payload.clone());
        let bwd = Packet::udp_v4(MacAddr::from_index(2), MacAddr::from_index(1), dst, src, dp, sp, 64, payload);
        let kf = nfm_net::FlowKey::from_packet(&fwd);
        let kb = nfm_net::FlowKey::from_packet(&bwd);
        prop_assert_eq!(kf.canonical(), kb.canonical());
        prop_assert!(kf.same_flow(&kb));
    }

    #[test]
    fn corrupting_ip_header_breaks_checksum_or_parse(
        src in arb_ipv4(), dst in arb_ipv4(),
        byte in 14usize..34, // within the IPv4 header of an emitted UDP packet
        bit in 0u8..8,
    ) {
        let p = Packet::udp_v4(MacAddr::from_index(1), MacAddr::from_index(2), src, dst, 40000, 53, 64, vec![1, 2, 3]);
        let mut bytes = p.emit();
        bytes[byte] ^= 1 << bit;
        // Either the packet fails to parse, or it parses to something
        // different (flipping a bit can never silently yield an identical
        // packet, because the IPv4 checksum covers the whole header).
        if let Ok(parsed) = Packet::parse(&bytes) { prop_assert_ne!(parsed, p) }
    }

    #[test]
    fn pcap_round_trips(
        times in proptest::collection::vec(0u64..10_000_000, 1..20),
        port in 1u16..,
    ) {
        let packets: Vec<_> = times
            .iter()
            .map(|&ts| nfm_net::TracePacket::from_packet(
                ts,
                &Packet::udp_v4(
                    MacAddr::from_index(1), MacAddr::from_index(2),
                    Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2),
                    4000, port, 64, vec![0; 4],
                ),
            ))
            .collect();
        let trace = nfm_net::Trace::from_packets(packets);
        let mut buf = Vec::new();
        nfm_net::pcap::write(&mut buf, &trace).expect("in-memory write");
        let back = nfm_net::pcap::read(&mut buf.as_slice()).expect("round trip");
        prop_assert_eq!(back.len(), trace.len());
        for (a, b) in back.packets().iter().zip(trace.packets()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn icmp_round_trips(ident in any::<u16>(), seq in any::<u16>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let repr = icmp::Repr { kind: icmp::Kind::EchoRequest, ident, seq_no: seq };
        let mut w = nfm_net::wire::Writer::new();
        repr.emit(&mut w, &data);
        let bytes = w.into_vec();
        let msg = icmp::Message::new_checked(&bytes[..]).expect("emitted parses");
        prop_assert_eq!(icmp::Repr::parse(&msg).expect("checksum valid"), repr);
        prop_assert_eq!(msg.payload(), &data[..]);
    }

    // ---- ingest never-panics: the serving path's hard guarantee --------
    //
    // `ServeEngine::ingest` feeds capture bytes straight into these
    // decoders; a panic anywhere below means a single corrupted packet
    // takes down the whole service. Every entry point must return `Err`
    // (or a lossy-but-valid value) on arbitrary and truncated input.

    #[test]
    fn pcap_read_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = nfm_net::pcap::read(&mut bytes.as_slice());
    }

    #[test]
    fn pcap_read_never_panics_on_truncation(
        n_packets in 1usize..8,
        keep in 0usize..600,
        do_flip in any::<bool>(),
        flip_idx in 0usize..600,
        flip_bit in 0u8..8,
    ) {
        let packets: Vec<_> = (0..n_packets)
            .map(|i| nfm_net::TracePacket::from_packet(
                i as u64 * 10,
                &Packet::udp_v4(
                    MacAddr::from_index(1), MacAddr::from_index(2),
                    Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2),
                    4000, 53, 64, vec![7; 8],
                ),
            ))
            .collect();
        let mut buf = Vec::new();
        nfm_net::pcap::write(&mut buf, &nfm_net::Trace::from_packets(packets)).expect("in-memory write");
        buf.truncate(keep.min(buf.len()));
        if do_flip && !buf.is_empty() {
            let idx = flip_idx % buf.len();
            buf[idx] ^= 1 << flip_bit;
        }
        let _ = nfm_net::pcap::read(&mut buf.as_slice());
    }

    #[test]
    fn trace_packet_parse_never_panics_on_noise(
        ts in any::<u64>(),
        frame in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = nfm_net::TracePacket { ts_us: ts, frame }.parse();
    }

    #[test]
    fn every_wire_decoder_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Ok(f) = ethernet::Frame::new_checked(&bytes[..]) {
            let _ = ethernet::Repr::parse(&f);
        }
        if let Ok(p) = ipv4::Packet::new_checked(&bytes[..]) {
            let _ = ipv4::Repr::parse(&p);
        }
        if let Ok(p) = ipv6::Packet::new_checked(&bytes[..]) {
            let _ = ipv6::Repr::parse(&p);
        }
        if let Ok(s) = tcp::Segment::new_checked(&bytes[..]) {
            let _ = tcp::Repr::parse(&s);
        }
        if let Ok(d) = udp::Datagram::new_checked(&bytes[..]) {
            let _ = udp::Repr::parse(&d);
        }
        if let Ok(m) = icmp::Message::new_checked(&bytes[..]) {
            let _ = icmp::Repr::parse(&m);
        }
        let _ = arp::Packet::parse(&bytes);
    }

    #[test]
    fn truncated_emitted_packets_never_panic(
        src in arb_ipv4(), dst in arb_ipv4(),
        sp in 1u16.., dp in 1u16..,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        cut in 0usize..512,
        use_tcp in any::<bool>(),
    ) {
        let p = if use_tcp {
            let repr = tcp::Repr { src_port: sp, dst_port: dp, seq: 1, ack: 2, flags: Flags(0x18), window: 1024 };
            Packet::tcp_v4(MacAddr::from_index(1), MacAddr::from_index(2), src, dst, repr, 64, payload)
        } else {
            Packet::udp_v4(MacAddr::from_index(1), MacAddr::from_index(2), src, dst, sp, dp, 64, payload)
        };
        let bytes = p.emit();
        let cut = cut % (bytes.len() + 1);
        // Parsing any prefix of a valid frame must be panic-free, and a
        // strict prefix must never round-trip to the original packet.
        match Packet::parse(&bytes[..cut]) {
            Ok(parsed) => prop_assert!(cut == bytes.len() && parsed == p),
            Err(_) => prop_assert!(cut < bytes.len()),
        }
    }

    #[test]
    fn udp_datagram_checksum_detects_payload_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        idx in 0usize..64,
        bit in 0u8..8,
    ) {
        let idx = idx % payload.len();
        let repr = udp::Repr { src_port: 7, dst_port: 9 };
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut w = nfm_net::wire::Writer::new();
        repr.emit(&mut w, src, dst, &payload);
        let mut bytes = w.into_vec();
        bytes[8 + idx] ^= 1 << bit;
        let d = udp::Datagram::new_checked(&bytes[..]).expect("length intact");
        prop_assert!(!d.verify_checksum_v4(src, dst));
    }
}

#[test]
fn transport_payload_accessor_consistent() {
    let p = Packet::udp_v4(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        Ipv4Addr::new(1, 1, 1, 1),
        Ipv4Addr::new(2, 2, 2, 2),
        1,
        2,
        64,
        vec![9; 33],
    );
    match &p.transport {
        Transport::Udp { payload, .. } => assert_eq!(payload.len(), p.transport.payload().len()),
        _ => unreachable!("constructed as UDP"),
    }
}
