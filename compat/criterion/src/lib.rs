//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, throughput annotations) with a simple wall-clock
//! measurement loop: warm up briefly, run a fixed batch, report the mean
//! per-iteration time. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup cost (ignored here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        for _ in 0..self.samples.min(3) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }

    /// Time `routine` with a fresh `setup` product per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.samples).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, last_mean: Duration::ZERO };
        f(&mut b);
        let mean = b.last_mean;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if !mean.is_zero() => {
                format!("  {:>10.1} MiB/s", n as f64 / mean.as_secs_f64() / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) if !mean.is_zero() => {
                format!("  {:>10.1} elem/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{:<28} {:>12.3?}/iter{}", self.name, id, mean, rate);
        self.criterion.ran += 1;
        self
    }

    /// End the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            throughput: None,
            sample_size: 10,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let id = id.to_string();
        self.benchmark_group("bench").bench_function(&id, f);
        self
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = { let _ = $cfg; $crate::Criterion::default() };
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(5);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(demo_group, quick_bench);

    #[test]
    fn harness_runs() {
        demo_group();
    }
}
