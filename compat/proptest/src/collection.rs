//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Sizes accepted by [`vec()`]: a fixed length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        use rand::Rng;
        let n = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.rng().gen_range(self.size.lo..self.size.hi)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
