//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro, `prop_assert*` macros, `any::<T>()`, range and tuple
//! strategies, `prop_map`, `collection::vec`, and a miniature
//! `string::string_regex` (character-class + repetition patterns only).
//! Cases are generated from a deterministic per-test RNG; there is no
//! shrinking — a failing case panics with the case number and message.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

pub mod collection;
pub mod string;

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Failure raised by `prop_assert*` inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving case generation; seeded from the test name so
/// every property explores a distinct but reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Create from a test name.
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Borrow the inner RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A bare string is interpreted as a regex, as in upstream proptest.
/// The pattern is re-parsed per generation; invalid patterns panic.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy for a single fixed value (`Just` in upstream proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of strategies over a common value type — what the
/// `prop_oneof!` macro builds. Each generation picks one branch with
/// probability proportional to its weight, then delegates to it.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// An empty union; generation panics until a branch is added.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Union<T> {
        Union { options: Vec::new() }
    }

    /// Add a branch with the given weight (builder-style, used by
    /// `prop_oneof!` so each strategy type is boxed at a call site where
    /// it is still concrete).
    pub fn or(mut self, weight: u32, strategy: impl Strategy<Value = T> + 'static) -> Union<T> {
        self.options.push((weight.max(1), Box::new(strategy)));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one strategy");
        let total: u32 = self.options.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.rng().gen_range(0..total);
        for (w, s) in &self.options {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= *w;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Choose among strategies, optionally weighted (`weight => strategy`), as
/// in upstream proptest.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new()$(.or($weight as u32, $strategy))+
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new()$(.or(1u32, $strategy))+
    };
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeFrom<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Full-range strategy for a primitive, from [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The strategy generating any value of `T`.
pub fn any<T: ArbitraryPrim>() -> Any<T> {
    Any(PhantomData)
}

/// Primitives supported by [`any`].
pub trait ArbitraryPrim: Sized {
    /// Generate a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {
        $(impl ArbitraryPrim for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng().gen()
            }
        })*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

impl<T: ArbitraryPrim> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Define property tests. Mirrors `proptest::proptest!`: an optional
/// `#![proptest_config(..)]` line, then `#[test]` functions whose arguments
/// use `name in strategy` syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("property `{}` failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`", a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u64..6), c in any::<u8>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(u16::from(c) < 256, "c={}", c);
        }

        #[test]
        fn mapping_applies(v in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert_ne!(v, 199);
        }

        #[test]
        fn vectors_respect_sizes(
            xs in crate::collection::vec(any::<u8>(), 0..16),
            ys in crate::collection::vec(0f32..1.0, 4),
        ) {
            prop_assert!(xs.len() < 16);
            prop_assert_eq!(ys.len(), 4);
        }

        #[test]
        fn string_regex_subset(s in crate::string::string_regex("[a-z0-9]{1,12}").expect("regex")) {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_across_runs() {
        let gen = || {
            let mut rng = TestRng::for_test("deterministic_across_runs");
            (0..10).map(|_| (0u64..1000).generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }
}
