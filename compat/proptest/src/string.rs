//! A miniature `string_regex`: supports concatenations of literal
//! characters and character classes (`[a-z0-9_]`), each optionally followed
//! by a `{m,n}`, `{n}`, `*`, `+`, or `?` repetition. That covers the
//! patterns this workspace's tests use; anything fancier returns an error.

use rand::Rng;

use crate::{Strategy, TestRng};

/// Pattern-parse error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unsupported regex: {}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Piece {
    choices: Vec<char>,
    min: usize,
    max: usize, // inclusive
}

/// Strategy generating strings matching a (restricted) regex.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    pieces: Vec<Piece>,
}

/// Build a string strategy from `pattern`.
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let mut pieces = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or_else(|| Error("unterminated class".into()))?
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        if lo > hi {
                            return Err(Error(format!("bad range {lo}-{hi}")));
                        }
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                if set.is_empty() {
                    return Err(Error("empty class".into()));
                }
                i = close + 1;
                set
            }
            '\\' => {
                let c = *chars.get(i + 1).ok_or_else(|| Error("trailing backslash".into()))?;
                i += 2;
                match c {
                    'd' => ('0'..='9').collect(),
                    'w' => ('a'..='z').chain('A'..='Z').chain('0'..='9').chain(['_']).collect(),
                    other => vec![other],
                }
            }
            '(' | ')' | '|' | '^' | '$' => {
                return Err(Error(format!("unsupported metacharacter `{}`", chars[i])))
            }
            '.' => {
                i += 1;
                (' '..='~').collect()
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional repetition suffix.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error("unterminated repetition".into()))?
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let parsed = if let Some((lo, hi)) = body.split_once(',') {
                    let lo = lo.trim().parse().map_err(|_| Error("bad repetition".into()))?;
                    let hi = hi.trim().parse().map_err(|_| Error("bad repetition".into()))?;
                    (lo, hi)
                } else {
                    let n = body.trim().parse().map_err(|_| Error("bad repetition".into()))?;
                    (n, n)
                };
                i = close + 1;
                parsed
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        if min > max {
            return Err(Error("repetition min > max".into()));
        }
        pieces.push(Piece { choices, min, max });
    }
    Ok(RegexGeneratorStrategy { pieces })
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let n = rng.rng().gen_range(piece.min..=piece.max);
            for _ in 0..n {
                let k = rng.rng().gen_range(0..piece.choices.len());
                out.push(piece.choices[k]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    #[test]
    fn class_with_counted_repetition() {
        let s = string_regex("[a-z0-9]{1,12}").expect("parse");
        let mut rng = TestRng::for_test("class_rep");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..=12).contains(&v.len()), "{v}");
            assert!(v.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn literals_and_escapes() {
        let s = string_regex("ab\\d{2}c?").expect("parse");
        let mut rng = TestRng::for_test("lit");
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v.starts_with("ab"));
            assert!(v[2..4].chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn alternation_is_rejected() {
        assert!(string_regex("a|b").is_err());
    }
}
