//! RNG implementations: SplitMix64 (seed expansion) and xoshiro256++
//! (the `StdRng` workhorse).

use crate::{RngCore, SeedableRng};

/// SplitMix64 — used to expand small seeds into full RNG state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a 64-bit state.
    pub fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The standard RNG: xoshiro256++, seeded via SplitMix64. Deterministic,
/// fast, and statistically strong enough for simulation and initialization
/// workloads (not cryptographic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Raw 256-bit internal state (for checkpoint serialization).
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Restore from a raw state previously obtained via [`StdRng::state`].
    pub fn from_state(s: [u64; 4]) -> StdRng {
        let mut rng = StdRng { s };
        rng.fixup();
        rng
    }

    fn fixup(&mut self) {
        // The all-zero state is a fixed point of xoshiro; nudge it.
        if self.s == [0; 4] {
            let mut sm = SplitMix64::new(0);
            for w in &mut self.s {
                *w = sm.next_u64();
            }
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut s = [0u64; 4];
        for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            *w = u64::from_le_bytes(b);
        }
        let mut rng = StdRng { s };
        rng.fixup();
        rng
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trip() {
        let mut a = StdRng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = StdRng::from_state(a.state());
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }

    #[test]
    fn output_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0usize; 16];
        for _ in 0..16_000 {
            buckets[(rng.next_u64() >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b}");
        }
    }
}
