//! The `Standard` distribution: uniform primitive values for `Rng::gen`.

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform over a type's natural full range (`[0, 1)` for floats).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits → [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 high bits → [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
