//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! API subset the workspace actually uses — `StdRng`, `SeedableRng`, and the
//! `Rng` extension methods (`gen`, `gen_range`, `gen_bool`, `fill`) — backed
//! by xoshiro256++ with SplitMix64 seeding. Streams are deterministic under
//! a given seed (the property every experiment and test in this repository
//! relies on) but intentionally make no attempt to match upstream `rand`'s
//! byte-for-byte output.

pub mod rngs;

mod distributions;
mod uniform;

pub use distributions::{Distribution, Standard};
pub use uniform::{SampleRange, SampleUniform};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it deterministically.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut sm = rngs::SplitMix64::new(state);
        for chunk in bytes.chunks_mut(8) {
            let v = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Values that [`Rng::fill`] can populate with random bytes.
pub trait Fill {
    /// Fill `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A uniform value in `range`. Panics on an empty range, like upstream.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`. Panics unless `p ∈ [0, 1]`, matching
    /// upstream behaviour.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside range [0.0, 1.0]");
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f = rng.gen_range(-1.5f32..=1.5);
            assert!((-1.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "outside range")]
    fn gen_bool_rejects_out_of_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn fill_array_changes_bytes() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 32];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_mut_ref_and_dyn_bounds() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(7);
        let _ = takes_generic(&mut rng);
        let r2 = &mut rng;
        let _: f32 = r2.gen();
    }
}
