//! Uniform range sampling for `Rng::gen_range`.

use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::RngCore;

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The maximum representable value (upper bound for `low..`).
    fn max_value() -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = high.wrapping_sub(low) as $u as u128;
                low.wrapping_add((rng.next_u64() as u128 % span) as $u as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let span = (high.wrapping_sub(low) as $u as u128) + 1;
                low.wrapping_add(((rng.next_u64() as u128 % span) as $u) as $t)
            }
            fn max_value() -> Self {
                <$t>::MAX
            }
        })*
    };
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + unit * (high as f64 - low as f64);
                // Guard against rounding up to the open bound.
                if v as $t >= high { low } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
            fn max_value() -> Self {
                <$t>::MAX
            }
        })*
    };
}

impl_uniform_float!(f32, f64);

/// Range expressions accepted by `Rng::gen_range`.
pub trait SampleRange<T: SampleUniform> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeFrom<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, self.start, T::max_value())
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn signed_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let v: i32 = rng.gen_range(-100..100);
            assert!((-100..100).contains(&v));
        }
    }

    #[test]
    fn float_half_open_never_hits_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let v = rng.gen_range(0.0f64..1e-300);
            assert!(v < 1e-300);
        }
    }

    #[test]
    fn range_from_is_bounded_by_max() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let v: u16 = rng.gen_range(1u16..);
            assert!(v >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }
}
