//! Quickstart: the full pretrain → fine-tune → evaluate loop in one file.
//!
//! Run with `cargo run --release --example quickstart`.

use nfm_core::netglue::Task;
use nfm_core::pipeline::{FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig};
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::PretrainConfig;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};

fn main() {
    println!("== nfm quickstart ==\n");

    // 1. "Collect" abundant unlabeled traffic (paper §3.2): simulate a
    //    capture point watching a mixed client population.
    let pretrain_envs = Environment::pretrain_mix(260);
    let traces: Vec<_> = pretrain_envs.iter().map(|e| e.simulate().trace).collect();
    let trace_refs: Vec<_> = traces.iter().collect();
    let n_packets: usize = traces.iter().map(|t| t.len()).sum();
    println!("unlabeled corpus: {n_packets} packets across {} traces", traces.len());

    // 2. Pre-train the foundation model with the field-aware tokenizer.
    let tokenizer = FieldTokenizer::new();
    let config = PipelineConfig {
        pretrain: PretrainConfig { epochs: 2, ..PretrainConfig::default() },
        ..PipelineConfig::default()
    };
    let (fm, stats) =
        FoundationModel::pretrain_on(&trace_refs, &tokenizer, &config).expect("pretraining failed");
    println!(
        "pretrained: vocab={} params; MLM loss {:.3} → {:.3}, masked-token accuracy {}",
        fm.vocab.len(),
        stats.mlm_loss.first().unwrap_or(&0.0),
        stats.mlm_loss.last().unwrap_or(&0.0),
        f3(stats.final_mlm_accuracy as f64),
    );

    // 3. Fine-tune on a small labeled set for application classification.
    let labeled = Environment::env_a(140).simulate();
    let flows = extract_flows(&labeled, 2);
    let examples = Task::AppClassification.examples(&flows, &tokenizer, 94);
    let (train, eval) = split_train_val(flows, 0.3);
    let train_ex = Task::AppClassification.examples(&train, &tokenizer, 94);
    let eval_ex = Task::AppClassification.examples(&eval, &tokenizer, 94);
    println!(
        "\nlabeled flows: {} total → {} train / {} eval",
        examples.len(),
        train_ex.len(),
        eval_ex.len()
    );
    let clf = FmClassifier::fine_tune(
        &fm,
        &train_ex,
        Task::AppClassification.n_classes(),
        &FineTuneConfig::default(),
    )
    .expect("fine-tuning failed");

    // 4. Evaluate.
    let confusion = clf.evaluate(&eval_ex);
    println!(
        "\napp classification: accuracy {}  macro-F1 {}\n",
        f3(confusion.accuracy()),
        f3(confusion.macro_f1())
    );
    let mut table = Table::new(&["class", "precision", "recall", "f1"]);
    for id in 0..Task::AppClassification.n_classes() {
        if confusion.recall(id).is_none() {
            continue;
        }
        table.row(&[
            Task::AppClassification.class_name(id),
            f3(confusion.precision(id).unwrap_or(0.0)),
            f3(confusion.recall(id).unwrap_or(0.0)),
            f3(confusion.f1(id).unwrap_or(0.0)),
        ]);
    }
    println!("{}", table.render());
}
