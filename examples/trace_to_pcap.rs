//! The traffic substrate on its own: simulate a labeled capture, write a
//! standard pcap file readable by Wireshark/tcpdump, read it back, and
//! summarize flows — no ML involved.
//!
//! Run with `cargo run --release --example trace_to_pcap`.

use std::collections::BTreeMap;
use std::fs::File;

use nfm_core::report::{count, Table};
use nfm_net::flow::FlowTable;
use nfm_net::pcap;
use nfm_traffic::netsim::{simulate, SimConfig};

fn main() -> std::io::Result<()> {
    let lt =
        simulate(&SimConfig { n_sessions: 120, anomaly_fraction: 0.1, ..SimConfig::default() });
    println!(
        "simulated {} packets / {} bytes over {:.1}s of capture",
        count(lt.trace.len()),
        count(lt.trace.total_bytes()),
        lt.trace.duration_us() as f64 / 1e6
    );

    let path = std::env::temp_dir().join("nfm_demo.pcap");
    let mut f = File::create(&path)?;
    pcap::write(&mut f, &lt.trace)?;
    println!("wrote {}", path.display());

    let mut f = File::open(&path)?;
    let back = pcap::read(&mut f).expect("own file parses");
    assert_eq!(back.len(), lt.trace.len());
    println!("read back {} packets — byte-identical round trip\n", count(back.len()));

    // Flow summary with ground-truth labels.
    let table = FlowTable::from_trace(back.packets().iter());
    let mut by_app: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for flow in table.flows() {
        let label = lt
            .label_of(&flow.key)
            .map(|l| {
                if l.is_malicious() {
                    format!("ATTACK:{}", l.anomaly.unwrap().name())
                } else {
                    l.app.name().to_string()
                }
            })
            .unwrap_or_else(|| "?".to_string());
        let entry = by_app.entry(label).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += flow.stats.total_bytes();
    }
    let mut out = Table::new(&["app / attack", "flows", "payload bytes"]);
    for (app, (flows, bytes)) in &by_app {
        out.row(&[app.clone(), count(*flows), count(*bytes)]);
    }
    println!("{}", out.render());
    Ok(())
}
