//! Synthesize traffic-token sequences from a pre-trained MLM (the
//! "generator" task family of §3.1 and a step toward §4.2's synthetic
//! training data): pre-train on simulated traffic, then Gibbs-sample new
//! flow-context token sequences, unconditionally and from prompts.
//!
//! Run with `cargo run --release --example synthesize_tokens`.

use nfm::model::context::{contexts_from_trace, ContextStrategy};
use nfm::model::generate::{generate, GenerateConfig};
use nfm::model::nn::transformer::EncoderConfig;
use nfm::model::pretrain::{pretrain, PretrainConfig, TaskMix};
use nfm::model::tokenize::field::FieldTokenizer;
use nfm::model::vocab::Vocab;
use nfm::traffic::dataset::Environment;

fn main() {
    println!("== synthesizing traffic-token sequences ==\n");
    let tokenizer = FieldTokenizer::new();
    let envs = Environment::pretrain_mix(240);
    let traces: Vec<_> = envs.iter().map(|e| e.simulate().trace).collect();
    let mut contexts = Vec::new();
    for t in &traces {
        contexts.extend(contexts_from_trace(t, &tokenizer, ContextStrategy::Flow, 60));
    }
    let vocab = Vocab::from_sequences(&contexts, 2);
    println!("pretraining MLM on {} flow contexts (vocab {})…\n", contexts.len(), vocab.len());
    let cfg = EncoderConfig {
        vocab: vocab.len(),
        d_model: 32,
        n_heads: 4,
        n_layers: 2,
        d_ff: 64,
        max_len: 62,
    };
    let (encoder, head, stats) = pretrain(
        &contexts,
        &vocab,
        cfg,
        &PretrainConfig { epochs: 3, tasks: TaskMix::mlm_only(), ..PretrainConfig::default() },
    )
    .expect("pretraining failed");
    println!("masked-token accuracy: {:.3}\n", stats.final_mlm_accuracy);

    println!("--- unconditional samples ---");
    for seed in 0..3 {
        let toks = generate(
            &encoder,
            &head,
            &vocab,
            &[],
            &GenerateConfig { length: 18, seed, ..GenerateConfig::default() },
        );
        println!("[{seed}] {}", toks.join(" "));
    }

    println!("\n--- prompted: 'a DNS query flow starts like…' ---");
    let prompt: Vec<String> =
        ["IP4", "PROTO_UDP", "TTL_64", "LEN_B7", "PORT_EPH", "PORT_53", "DNS_QUERY"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    for seed in 0..3 {
        let toks = generate(
            &encoder,
            &head,
            &vocab,
            &prompt,
            &GenerateConfig {
                length: 18,
                seed: 100 + seed,
                temperature: 0.7,
                ..GenerateConfig::default()
            },
        );
        println!("[{seed}] {}", toks.join(" "));
    }
    println!("\nThe continuations should look like plausible DNS-flow tokens");
    println!("(QTYPE/QD/RCODE families), not random vocabulary.");
}
