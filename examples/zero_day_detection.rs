//! Zero-day detection (paper §4.3): train a classifier on benign traffic
//! plus *known* attack classes, then score attack classes it has never seen
//! with three OOD detectors and report AUROC per zero-day class.
//!
//! Run with `cargo run --release --example zero_day_detection`.

use nfm_core::metrics::auroc;
use nfm_core::netglue::Task;
use nfm_core::ood::{OodDetector, OodScore};
use nfm_core::pipeline::{FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig};
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::PretrainConfig;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, OodSplit};

fn main() {
    println!("== zero-day detection via OOD scores ==\n");
    let tokenizer = FieldTokenizer::new();
    let split = OodSplit::default();
    println!(
        "known attacks: {:?}\nzero-days:     {:?}\n",
        split.known.iter().map(|c| c.name()).collect::<Vec<_>>(),
        split.zero_day.iter().map(|c| c.name()).collect::<Vec<_>>()
    );

    // Pre-train on the training environment's traffic (unlabeled).
    let train_lt = split.train_env(200).simulate();
    let config = PipelineConfig {
        pretrain: PretrainConfig { epochs: 2, ..PretrainConfig::default() },
        ..PipelineConfig::default()
    };
    let (fm, _) = FoundationModel::pretrain_on(&[&train_lt.trace], &tokenizer, &config)
        .expect("pretraining failed");

    // Fine-tune a malware classifier on benign + known attacks.
    let train_flows = extract_flows(&train_lt, 2);
    let train_ex = Task::MalwareDetection.examples(&train_flows, &tokenizer, 94);
    let clf = FmClassifier::fine_tune(&fm, &train_ex, 2, &FineTuneConfig::default())
        .expect("fine-tuning failed");
    let train_acc = clf.evaluate(&train_ex).accuracy();
    println!("classifier training accuracy on known classes: {}", f3(train_acc));

    // Evaluation environment: benign + zero-day attacks only.
    let eval_lt = split.eval_env(220).simulate();
    let eval_flows = extract_flows(&eval_lt, 2);
    let detector = OodDetector::fit(&clf, &train_ex);

    let benign: Vec<_> = eval_flows.iter().filter(|f| !f.label.is_malicious()).collect();
    println!("eval flows: {} benign, {} zero-day\n", benign.len(), eval_flows.len() - benign.len());

    let mut table = Table::new(&["zero-day class", "score", "auroc"]);
    for class in &split.zero_day {
        let attacks: Vec<_> =
            eval_flows.iter().filter(|f| f.label.anomaly == Some(*class)).collect();
        if attacks.is_empty() {
            continue;
        }
        for score in OodScore::ALL {
            let pos: Vec<f64> = attacks
                .iter()
                .map(|f| {
                    let toks = nfm_model::context::flow_context(&f.packets, &tokenizer, 94);
                    detector.score(&clf, &toks, score)
                })
                .collect();
            let neg: Vec<f64> = benign
                .iter()
                .map(|f| {
                    let toks = nfm_model::context::flow_context(&f.packets, &tokenizer, 94);
                    detector.score(&clf, &toks, score)
                })
                .collect();
            table.row(&[class.name().to_string(), score.name().to_string(), f3(auroc(&pos, &neg))]);
        }
    }
    println!("{}", table.render());
    println!("AUROC 0.5 = chance; the embedding-based scores answer the");
    println!("Sommer-Paxson objection the paper discusses in §4.3.");
}
