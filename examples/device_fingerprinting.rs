//! IoT device fingerprinting with explanations (paper §4.2 + §4.4): train a
//! device classifier, then explain individual predictions at token and
//! field-group ("superpixel") granularity.
//!
//! Run with `cargo run --release --example device_fingerprinting`.

use nfm_core::interpret::{deletion_auc, occlusion_groups, occlusion_tokens};
use nfm_core::netglue::Task;
use nfm_core::pipeline::{FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig};
use nfm_core::report::{f3, Table};
use nfm_model::pretrain::PretrainConfig;
use nfm_model::tokenize::field::FieldTokenizer;
use nfm_traffic::dataset::{extract_flows, split_train_val, Environment};

fn main() {
    println!("== device fingerprinting + explanations ==\n");
    let tokenizer = FieldTokenizer::new();

    let lt = Environment::env_a(240).simulate();
    let config = PipelineConfig {
        pretrain: PretrainConfig { epochs: 2, ..PretrainConfig::default() },
        ..PipelineConfig::default()
    };
    let (fm, _) = FoundationModel::pretrain_on(&[&lt.trace], &tokenizer, &config)
        .expect("pretraining failed");

    let flows = extract_flows(&lt, 2);
    let (train, eval) = split_train_val(flows, 0.3);
    let task = Task::DeviceClassification;
    let train_ex = task.examples(&train, &tokenizer, 94);
    let eval_ex = task.examples(&eval, &tokenizer, 94);
    println!("{} train / {} eval device-labeled flows", train_ex.len(), eval_ex.len());

    let clf = FmClassifier::fine_tune(&fm, &train_ex, task.n_classes(), &FineTuneConfig::default())
        .expect("fine-tuning failed");
    let confusion = clf.evaluate(&eval_ex);
    println!(
        "device classification: accuracy {}  macro-F1 {}\n",
        f3(confusion.accuracy()),
        f3(confusion.macro_f1())
    );

    // Explain one confident prediction of each device class.
    for want in 0..task.n_classes() {
        let Some(example) =
            eval_ex.iter().find(|e| e.label == want && clf.predict(&e.tokens) == want)
        else {
            continue;
        };
        println!(
            "--- explaining a '{}' flow ({} tokens) ---",
            task.class_name(want),
            example.tokens.len()
        );
        let token_attr = occlusion_tokens(&clf, &example.tokens);
        let mut top = token_attr.clone();
        top.sort_by(|a, b| b.importance.partial_cmp(&a.importance).unwrap());
        let mut table = Table::new(&["top token", "importance"]);
        for a in top.iter().take(4) {
            table.row(&[a.unit.clone(), f3(a.importance)]);
        }
        println!("{}", table.render());

        let group_attr = occlusion_groups(&clf, &example.tokens);
        let mut top = group_attr.clone();
        top.sort_by(|a, b| b.importance.partial_cmp(&a.importance).unwrap());
        let mut table = Table::new(&["top field group", "tokens", "importance"]);
        for a in top.iter().take(3) {
            table.row(&[a.unit.clone(), a.token_indices.len().to_string(), f3(a.importance)]);
        }
        println!("{}", table.render());
        println!(
            "explanation fidelity (deletion AUC, lower=better): tokens {} groups {}\n",
            f3(deletion_auc(&clf, &example.tokens, &token_attr)),
            f3(deletion_auc(&clf, &example.tokens, &group_attr)),
        );
    }
}
