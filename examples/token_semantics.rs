//! Explore the semantic map of traffic tokens (paper §3.3): train skip-gram
//! embeddings on a simulated capture and print the nearest neighbors of a
//! selection of protocol tokens — ports, ciphersuites, DNS record types,
//! HTTP verbs.
//!
//! Run with `cargo run --release --example token_semantics`.

use nfm::model::context::{contexts_from_trace, ContextStrategy};
use nfm::model::embed::analysis::nearest_neighbors;
use nfm::model::embed::word2vec::{Word2Vec, Word2VecConfig};
use nfm::model::tokenize::field::FieldTokenizer;
use nfm::model::vocab::Vocab;
use nfm::traffic::dataset::Environment;

fn main() {
    println!("== token semantic map ==\n");
    let tokenizer = FieldTokenizer::new();
    let envs = Environment::pretrain_mix(300);
    let traces: Vec<_> = envs.iter().map(|e| e.simulate().trace).collect();
    let mut contexts = Vec::new();
    for t in &traces {
        contexts.extend(contexts_from_trace(t, &tokenizer, ContextStrategy::Flow, 94));
    }
    let vocab = Vocab::from_sequences(&contexts, 2);
    let encoded: Vec<Vec<usize>> = contexts.iter().map(|c| vocab.encode(c)).collect();
    println!(
        "corpus: {} contexts, {} distinct tokens\ntraining skip-gram…\n",
        contexts.len(),
        vocab.len()
    );
    let w2v = Word2Vec::train(
        &encoded,
        &vocab,
        &Word2VecConfig { dim: 32, epochs: 6, ..Word2VecConfig::default() },
    );

    for query in [
        "PORT_443",
        "PORT_53",
        "PORT_25",
        "CS_1301",
        "CS_C02F",
        "DNS_QUERY",
        "QTYPE_A",
        "HTTP_GET",
        "TLS_CLIENT_HELLO",
        "MQTT_3",
        "FLAGS_S",
    ] {
        let Some(id) = vocab.id_exact(query) else {
            println!("{query:<18} (not in vocabulary)");
            continue;
        };
        let nns: Vec<String> = nearest_neighbors(&w2v.embeddings, &vocab, id, 5)
            .into_iter()
            .map(|n| format!("{} ({:.2})", n.token, n.similarity))
            .collect();
        println!("{query:<18} → {}", nns.join(", "));
    }
    println!("\nRelated protocol tokens cluster: the structure §3.3 of the paper");
    println!("says network data contains, discovered without any labels.");
}
