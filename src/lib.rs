//! # nfm — network foundation models
//!
//! Facade crate re-exporting the full stack. See the README for a tour and
//! DESIGN.md for the system inventory; the runnable entry points are the
//! `examples/` directory and the experiment binaries in `crates/bench`.
//!
//! Layer map (bottom-up):
//! - [`net`] — packet formats, flows, pcap (substrate).
//! - [`traffic`] — synthetic labeled traffic generation (substrate).
//! - [`tensor`] — matrices, layers, optimizers (substrate).
//! - [`model`] — tokenizers, contexts, embeddings, GRU/transformer,
//!   pre-training objectives.
//! - [`core`] — the foundation-model pipeline, baselines, OOD detection,
//!   interpretability, NetGLUE.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use nfm_core as core;
pub use nfm_model as model;
pub use nfm_net as net;
pub use nfm_tensor as tensor;
pub use nfm_traffic as traffic;
