//! Integration tests asserting the statistical realism properties the
//! traffic generator promises — the properties the models rely on.

use std::collections::{BTreeMap, HashSet};

use nfm::net::flow::FlowTable;
use nfm::net::packet::Transport;
use nfm::traffic::dataset::extract_flows;
use nfm::traffic::netsim::{simulate, SimConfig};
use nfm::traffic::{AppClass, DeviceClass};

fn big_sim() -> nfm::traffic::LabeledTrace {
    simulate(&SimConfig {
        n_sessions: 250,
        n_general_hosts: 8,
        n_iot_sets: 2,
        ..SimConfig::default()
    })
}

#[test]
fn app_classes_have_distinct_port_profiles() {
    let lt = big_sim();
    let flows = extract_flows(&lt, 1);
    let mut ports_by_app: BTreeMap<AppClass, HashSet<u16>> = BTreeMap::new();
    for f in &flows {
        let server_port = f.key.src_port.min(f.key.dst_port);
        ports_by_app.entry(f.label.app).or_default().insert(server_port);
    }
    // DNS flows always involve port 53; NTP always 123.
    assert_eq!(ports_by_app[&AppClass::Ntp], HashSet::from([123]));
    assert!(ports_by_app[&AppClass::Dns].contains(&53));
    assert!(ports_by_app[&AppClass::Mail].iter().all(|p| [25, 143, 53].contains(p)));
}

#[test]
fn video_flows_are_heavier_than_iot_telemetry() {
    let lt = big_sim();
    let flows = extract_flows(&lt, 1);
    let mean_bytes = |app: AppClass| {
        let v: Vec<usize> = flows
            .iter()
            .filter(|f| f.label.app == app && f.key.protocol == 6)
            .map(|f| f.stats.total_bytes())
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<usize>() as f64 / v.len() as f64
        }
    };
    let video = mean_bytes(AppClass::Video);
    let iot = mean_bytes(AppClass::Iot);
    assert!(video > iot * 3.0, "video {video} vs iot {iot}");
}

#[test]
fn device_fingerprints_differ() {
    let lt = big_sim();
    let flows = extract_flows(&lt, 1);
    // Workstations stamp TTL 128, IoT devices 64 — recoverable from packets.
    let mut ttl_by_device: BTreeMap<DeviceClass, HashSet<u8>> = BTreeMap::new();
    for f in &flows {
        for tp in &f.packets {
            if let Ok(p) = tp.parse() {
                // Client-originated packets only (client IP is in 192.168/16).
                let src = match p.ip.src() {
                    std::net::IpAddr::V4(a) => a,
                    _ => continue,
                };
                if src.octets()[0] == 192 && src.octets()[1] == 168 {
                    ttl_by_device.entry(f.label.device).or_default().insert(p.ip.ttl());
                }
            }
        }
    }
    if let (Some(ws), Some(cam)) =
        (ttl_by_device.get(&DeviceClass::Workstation), ttl_by_device.get(&DeviceClass::Camera))
    {
        assert!(ws.contains(&128));
        assert!(!cam.contains(&128));
    }
}

#[test]
fn capture_point_sees_concurrent_flows() {
    let lt = big_sim();
    // Within any 1-second window mid-trace there should be packets from
    // multiple flows (the §4.1.3 interleaving property).
    let mid = lt.trace.packets()[lt.trace.len() / 2].ts_us;
    let window = lt.trace.window(mid, mid + 1_000_000);
    let table = FlowTable::from_trace(window.packets().iter());
    assert!(table.len() > 1, "flows in 1s window: {}", table.len());
}

#[test]
fn tls_handshakes_carry_device_ciphersuites() {
    let lt = big_sim();
    let mut iot_weak = 0usize;
    let mut iot_total = 0usize;
    for tp in lt.trace.packets() {
        let Ok(p) = tp.parse() else { continue };
        let Transport::Tcp { repr, payload } = &p.transport else { continue };
        if repr.dst_port != 443 || payload.is_empty() {
            continue;
        }
        let Ok(records) = nfm::net::wire::tls::Record::parse_all(payload) else { continue };
        for r in records {
            if let Ok(hello) = nfm::net::wire::tls::ClientHello::parse(&r.payload) {
                let label = lt.label_of(&nfm::net::flow::FlowKey::from_packet(&p));
                if let Some(l) = label {
                    if matches!(l.device, DeviceClass::Thermostat | DeviceClass::SmartBulb) {
                        iot_total += 1;
                        if hello
                            .ciphersuites
                            .iter()
                            .all(|&s| !nfm::net::wire::tls::suites::is_strong(s))
                        {
                            iot_weak += 1;
                        }
                    }
                }
            }
        }
    }
    if iot_total > 0 {
        assert_eq!(iot_weak, iot_total, "constrained IoT always offers weak suites");
    }
}

#[test]
fn flow_interarrival_is_poisson_like() {
    let lt = big_sim();
    let flows = extract_flows(&lt, 1);
    let mut starts: Vec<u64> = flows.iter().map(|f| f.stats.first_ts_us).collect();
    starts.sort_unstable();
    let gaps: Vec<f64> = starts.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    // Exponential inter-arrivals: coefficient of variation ≈ 1.
    let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
    let cv = var.sqrt() / mean;
    assert!(cv > 0.5 && cv < 3.0, "cv {cv}");
}
