//! Cross-crate integration tests: traffic generation → tokenization →
//! pre-training → fine-tuning → evaluation, plus determinism and file IO.

use nfm::core::netglue::Task;
use nfm::core::pipeline::{FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig};
use nfm::model::pretrain::{PretrainConfig, TaskMix};
use nfm::model::tokenize::field::FieldTokenizer;
use nfm::traffic::dataset::{extract_flows, split_train_val, Environment};
use nfm::traffic::netsim::{simulate, SimConfig};

fn tiny_pipeline_config() -> PipelineConfig {
    PipelineConfig {
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: 48,
        pretrain: PretrainConfig {
            epochs: 1,
            tasks: TaskMix::mlm_only(),
            ..PretrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn end_to_end_pretrain_finetune_evaluate() {
    let lt = simulate(&SimConfig {
        n_sessions: 60,
        n_general_hosts: 4,
        n_iot_sets: 1,
        ..SimConfig::default()
    });
    let tokenizer = FieldTokenizer::new();
    let (fm, stats) =
        FoundationModel::pretrain_on(&[&lt.trace], &tokenizer, &tiny_pipeline_config())
            .expect("pretraining failed");
    // One epoch at d=16 with name-focused masking is a hard MLM setup;
    // chance over this vocabulary is < 1%, so > 5% proves learning.
    assert!(stats.final_mlm_accuracy > 0.05, "mlm acc {}", stats.final_mlm_accuracy);

    let flows = extract_flows(&lt, 2);
    let (train_flows, eval_flows) = split_train_val(flows, 0.3);
    let task = Task::AppClassification;
    let train = task.examples(&train_flows, &tokenizer, 46);
    let eval = task.examples(&eval_flows, &tokenizer, 46);
    assert!(!train.is_empty() && !eval.is_empty());

    let clf = FmClassifier::fine_tune(
        &fm,
        &train,
        task.n_classes(),
        &FineTuneConfig { epochs: 5, ..FineTuneConfig::default() },
    )
    .expect("fine-tuning failed");
    let confusion = clf.evaluate(&eval);
    // Must beat the majority-class rate by a clear margin on this easy mix.
    assert!(confusion.accuracy() > 0.5, "accuracy {}", confusion.accuracy());
}

#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let lt = simulate(&SimConfig {
            n_sessions: 25,
            n_general_hosts: 3,
            n_iot_sets: 1,
            ..SimConfig::default()
        });
        let tokenizer = FieldTokenizer::new();
        let (fm, stats) =
            FoundationModel::pretrain_on(&[&lt.trace], &tokenizer, &tiny_pipeline_config())
                .expect("pretraining failed");
        (fm.vocab.len(), stats.mlm_loss.clone(), fm.encoder.token_embeddings().data().to_vec())
    };
    let (v1, l1, e1) = run();
    let (v2, l2, e2) = run();
    assert_eq!(v1, v2);
    assert_eq!(l1, l2);
    assert_eq!(e1, e2);
}

#[test]
fn environments_shift_but_pretraining_covers_both() {
    // The pretraining mixture's vocabulary must cover tokens from both
    // environments — the mechanism behind the E1 transfer result.
    let tokenizer = FieldTokenizer::new();
    let envs = Environment::pretrain_mix(60);
    let traces: Vec<_> = envs.iter().map(|e| e.simulate().trace).collect();
    let refs: Vec<_> = traces.iter().collect();
    let (fm, _) = FoundationModel::pretrain_on(&refs, &tokenizer, &tiny_pipeline_config())
        .expect("pretraining failed");

    let lt_b = Environment::env_b(40).simulate();
    let flows_b = extract_flows(&lt_b, 2);
    let examples = Task::AppClassification.examples(&flows_b, &tokenizer, 46);
    // Count env-B tokens known to the FM vocabulary.
    let mut known = 0usize;
    let mut total = 0usize;
    for e in &examples {
        for t in &e.tokens {
            total += 1;
            if fm.vocab.id_exact(t).is_some() {
                known += 1;
            }
        }
    }
    let coverage = known as f64 / total.max(1) as f64;
    assert!(coverage > 0.8, "vocab coverage of env-B: {coverage}");
}

#[test]
fn pcap_file_round_trip_through_filesystem() {
    let lt = simulate(&SimConfig { n_sessions: 15, ..SimConfig::default() });
    let path = std::env::temp_dir().join(format!("nfm_it_{}.pcap", std::process::id()));
    {
        let mut f = std::fs::File::create(&path).unwrap();
        nfm::net::pcap::write(&mut f, &lt.trace).unwrap();
    }
    let mut f = std::fs::File::open(&path).unwrap();
    let back = nfm::net::pcap::read(&mut f).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(back.len(), lt.trace.len());
    for (a, b) in back.packets().iter().zip(lt.trace.packets()) {
        assert_eq!(a, b);
    }
}

#[test]
fn every_generated_packet_parses_and_reemits_identically() {
    let lt = simulate(&SimConfig { n_sessions: 40, anomaly_fraction: 0.2, ..SimConfig::default() });
    for tp in lt.trace.packets() {
        let parsed = tp.parse().expect("generator emits valid packets");
        assert_eq!(parsed.emit(), tp.frame, "emit∘parse must be identity");
    }
}

#[test]
fn netglue_tasks_consistent_across_crates() {
    let lt =
        simulate(&SimConfig { n_sessions: 60, anomaly_fraction: 0.15, ..SimConfig::default() });
    let flows = extract_flows(&lt, 1);
    let tokenizer = FieldTokenizer::new();
    for task in Task::ALL {
        let examples = task.examples(&flows, &tokenizer, 64);
        assert!(!examples.is_empty(), "{}", task.name());
        for e in &examples {
            assert!(e.label < task.n_classes());
        }
    }
}
