//! Integration tests for the OOD and interpretability layers on real
//! generated traffic (not synthetic token toys).

use nfm::core::interpret::{deletion_auc, occlusion_groups, occlusion_tokens};
use nfm::core::metrics::auroc;
use nfm::core::netglue::Task;
use nfm::core::ood::{OodDetector, OodScore};
use nfm::core::pipeline::{FineTuneConfig, FmClassifier, FoundationModel, PipelineConfig};
use nfm::model::context::flow_context;
use nfm::model::pretrain::{PretrainConfig, TaskMix};
use nfm::model::tokenize::field::FieldTokenizer;
use nfm::traffic::dataset::{extract_flows, OodSplit};

fn small_cfg() -> PipelineConfig {
    PipelineConfig {
        d_model: 16,
        n_heads: 2,
        n_layers: 1,
        d_ff: 32,
        max_len: 64,
        pretrain: PretrainConfig {
            epochs: 1,
            tasks: TaskMix::mlm_only(),
            ..PretrainConfig::default()
        },
        ..PipelineConfig::default()
    }
}

#[test]
fn zero_day_scores_beat_chance_on_real_attacks() {
    let tokenizer = FieldTokenizer::new();
    let split = OodSplit::default();
    let train_lt = split.train_env(110).simulate();
    let eval_lt = split.eval_env(110).simulate();
    let (fm, _) = FoundationModel::pretrain_on(&[&train_lt.trace], &tokenizer, &small_cfg())
        .expect("pretraining failed");

    let train_flows = extract_flows(&train_lt, 2);
    let train_ex = Task::MalwareDetection.examples(&train_flows, &tokenizer, 62);
    let clf = FmClassifier::fine_tune(
        &fm,
        &train_ex,
        2,
        &FineTuneConfig { epochs: 3, ..FineTuneConfig::default() },
    )
    .expect("fine-tuning failed");
    let detector = OodDetector::fit(&clf, &train_ex);

    let eval_flows = extract_flows(&eval_lt, 2);
    let benign: Vec<Vec<String>> = eval_flows
        .iter()
        .filter(|f| !f.label.is_malicious())
        .map(|f| flow_context(&f.packets, &tokenizer, 62))
        .collect();
    let zero_days: Vec<Vec<String>> = eval_flows
        .iter()
        .filter(|f| f.label.is_malicious())
        .map(|f| flow_context(&f.packets, &tokenizer, 62))
        .collect();
    assert!(!benign.is_empty() && !zero_days.is_empty());

    // At least one of the three scores must clearly beat chance.
    let mut best = 0.0f64;
    for score in OodScore::ALL {
        let pos: Vec<f64> = zero_days.iter().map(|t| detector.score(&clf, t, score)).collect();
        let neg: Vec<f64> = benign.iter().map(|t| detector.score(&clf, t, score)).collect();
        best = best.max(auroc(&pos, &neg));
    }
    // At this deliberately tiny scale (1-epoch pretrain, d=16, 1 layer) we
    // only assert clearly-above-chance; experiment E8 records the
    // full-scale numbers.
    assert!(best > 0.55, "best zero-day AUROC {best}");
}

#[test]
fn explanations_are_structurally_sound_on_real_flows() {
    let tokenizer = FieldTokenizer::new();
    let lt = nfm::traffic::simulate(&nfm::traffic::SimConfig {
        n_sessions: 70,
        ..nfm::traffic::SimConfig::default()
    });
    let (fm, _) = FoundationModel::pretrain_on(&[&lt.trace], &tokenizer, &small_cfg())
        .expect("pretraining failed");
    let flows = extract_flows(&lt, 2);
    let task = Task::AppClassification;
    let examples = task.examples(&flows, &tokenizer, 40);
    let clf = FmClassifier::fine_tune(
        &fm,
        &examples,
        task.n_classes(),
        &FineTuneConfig { epochs: 3, ..FineTuneConfig::default() },
    )
    .expect("fine-tuning failed");

    let example = examples.iter().find(|e| e.tokens.len() >= 8).expect("a long example");
    let token_attr = occlusion_tokens(&clf, &example.tokens);
    assert_eq!(token_attr.len(), example.tokens.len());

    let group_attr = occlusion_groups(&clf, &example.tokens);
    assert!(group_attr.len() < token_attr.len(), "groups must coarsen");
    // Every token index appears in exactly one group.
    let mut seen = vec![false; example.tokens.len()];
    for g in &group_attr {
        for &i in &g.token_indices {
            assert!(!seen[i], "index {i} in two groups");
            seen[i] = true;
        }
    }
    assert!(seen.iter().all(|&s| s));

    let auc = deletion_auc(&clf, &example.tokens, &token_attr);
    assert!((0.0..=1.0).contains(&auc));
}
